package compressors

import (
	"fmt"

	"github.com/crestlab/crest/internal/grid"
	"github.com/crestlab/crest/internal/huffman"
	"github.com/crestlab/crest/internal/quant"
)

// MGARDLike is the MGARD-family compressor: a multilevel hierarchical
// decomposition over dyadic grids with *linear* interpolation basis
// functions and per-level error budgets — coarse levels are coded with
// finer quantizers because their corrections influence every finer level
// of the hierarchy, the discrete analogue of MGARD distributing the error
// bound across multilevel coefficients (§II).
type MGARDLike struct {
	// Radius is the quantization radius (default quant.DefaultRadius).
	Radius int
}

// NewMGARDLike returns an MGARD-family compressor with defaults.
func NewMGARDLike() *MGARDLike { return &MGARDLike{} }

// Name implements Compressor.
func (c *MGARDLike) Name() string { return "mgardlike" }

// mgardVisit enumerates grid points level by level like szinterpVisit but
// with linear prediction only, reporting the level index (0 = coarsest
// refinement) so the caller can pick a per-level quantizer.
func mgardVisit(recon []float64, rows, cols int, fn func(level, i, j int, pred float64)) {
	s := 1
	for s < rows || s < cols {
		s <<= 1
	}
	level := 0
	for ; s >= 2; s >>= 1 {
		h := s / 2
		for i := 0; i < rows; i += s {
			for j := h; j < cols; j += s {
				fn(level, i, j, linearPred(recon, cols, i, j, 0, h, cols))
			}
		}
		for i := h; i < rows; i += s {
			for j := 0; j < cols; j += h {
				fn(level, i, j, linearPred(recon, cols, i, j, h, 0, rows))
			}
		}
		level++
	}
}

// linearPred predicts by averaging the two lattice neighbors along one
// axis, falling back to the single available neighbor at boundaries.
func linearPred(recon []float64, cols, i, j, di, dj, limit int) float64 {
	at := func(k int) float64 { return recon[(i+k*di)*cols+(j+k*dj)] }
	var pos int
	if di > 0 {
		pos = i
	} else {
		pos = j
	}
	h := maxInt(di, dj)
	lo, hi := pos-h >= 0, pos+h < limit
	switch {
	case lo && hi:
		return (at(-1) + at(1)) / 2
	case lo:
		return at(-1)
	case hi:
		return at(1)
	default:
		return 0
	}
}

// levelEps returns the per-level error budget: the finest level uses the
// full ε while each coarser level tightens by 2×, capped at ε/8.
func levelEps(eps float64, level, nLevels int) float64 {
	depth := nLevels - 1 - level // 0 at finest
	e := eps
	for d := 0; d < depth && d < 3; d++ {
		e /= 2
	}
	return e
}

func mgardLevels(rows, cols int) int {
	s, n := 1, 0
	for s < rows || s < cols {
		s <<= 1
		n++
	}
	return n
}

// Compress implements Compressor.
func (c *MGARDLike) Compress(buf *grid.Buffer, eps float64) ([]byte, error) {
	if eps <= 0 {
		return nil, fmt.Errorf("mgardlike: error bound must be positive, got %g", eps)
	}
	rows, cols := buf.Rows, buf.Cols
	nLev := mgardLevels(rows, cols)
	quants := make([]*quant.Quantizer, maxInt(nLev, 1))
	for l := range quants {
		quants[l] = quant.New(levelEps(eps, l, nLev), c.Radius)
	}
	recon := make([]float64, rows*cols)
	anchor := buf.Data[0]
	recon[0] = anchor
	codes := make([]uint32, 0, rows*cols)
	var outliers []float64
	mgardVisit(recon, rows, cols, func(level, i, j int, pred float64) {
		q := quants[level]
		x := buf.Data[i*cols+j]
		code, ok := q.Quantize(x - pred)
		if !ok {
			codes = append(codes, quant.OutlierCode)
			outliers = append(outliers, x)
			recon[i*cols+j] = x
			return
		}
		codes = append(codes, code)
		recon[i*cols+j] = pred + q.Dequantize(code)
	})
	hblob, _ := huffman.Encode(codes)
	var w wbuf
	w.putFloat(eps)
	w.putUvarint(uint64(quant.New(eps, c.Radius).Radius()))
	w.putFloat(anchor)
	w.putUvarint(uint64(len(hblob)))
	w.Write(hblob)
	w.putUvarint(uint64(len(outliers)))
	w.putFloats(outliers)
	return sealStream(tagMGARD, rows, cols, w.Bytes()), nil
}

// Decompress implements Compressor.
func (c *MGARDLike) Decompress(data []byte) (*grid.Buffer, error) {
	rows, cols, payload, err := openStream(tagMGARD, data)
	if err != nil {
		return nil, err
	}
	r := newRbuf(payload)
	eps, err := r.getFloat()
	if err != nil {
		return nil, ErrCorrupt
	}
	radius, err := r.getUvarint()
	if err != nil {
		return nil, ErrCorrupt
	}
	anchor, err := r.getFloat()
	if err != nil {
		return nil, ErrCorrupt
	}
	hlen, err := r.getUvarint()
	if err != nil || hlen > uint64(r.Len()) {
		return nil, ErrCorrupt
	}
	hblob := make([]byte, hlen)
	if _, err := r.Read(hblob); err != nil {
		return nil, ErrCorrupt
	}
	codes, err := huffman.Decode(hblob)
	if err != nil {
		return nil, fmt.Errorf("mgardlike: %w", err)
	}
	nout, err := r.getUvarint()
	if err != nil {
		return nil, ErrCorrupt
	}
	outliers, err := r.getFloats(int(nout))
	if err != nil {
		return nil, ErrCorrupt
	}
	nLev := mgardLevels(rows, cols)
	quants := make([]*quant.Quantizer, maxInt(nLev, 1))
	for l := range quants {
		quants[l] = quant.New(levelEps(eps, l, nLev), int(radius))
	}
	out := grid.NewBuffer(rows, cols)
	out.Data[0] = anchor
	ci, oi := 0, 0
	var decodeErr error
	mgardVisit(out.Data, rows, cols, func(level, i, j int, pred float64) {
		if decodeErr != nil {
			return
		}
		if ci >= len(codes) {
			decodeErr = ErrCorrupt
			return
		}
		code := codes[ci]
		ci++
		if code == quant.OutlierCode {
			if oi >= len(outliers) {
				decodeErr = ErrCorrupt
				return
			}
			out.Data[i*cols+j] = outliers[oi]
			oi++
			return
		}
		out.Data[i*cols+j] = pred + quants[level].Dequantize(code)
	})
	if decodeErr != nil {
		return nil, decodeErr
	}
	return out, nil
}
