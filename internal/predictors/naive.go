package predictors

import (
	"math"

	"github.com/crestlab/crest/internal/grid"
	"github.com/crestlab/crest/internal/linalg"
	"github.com/crestlab/crest/internal/stats"
)

// naive.go is the unfused reference implementation: each metric runs its
// own pass over the blocks, re-vectorizing and re-deriving shared
// quantities. It exists (a) as a differential-testing oracle for the fused
// §IV-C implementation and (b) to quantify the benefit of fusing the
// routines "into a single routine to minimize loads", one of the paper's
// design points (see BenchmarkAblationFusedMetrics). Prior approaches such
// as Underwood's compute their metrics in exactly this one-pass-per-metric
// style, which is where the paper's training-time advantage comes from.

// NaiveComputeDataset computes the same DatasetFeatures as ComputeDataset
// with one independent pass per metric and no parallelism.
func NaiveComputeDataset(buf *grid.Buffer, cfg Config) (DatasetFeatures, error) {
	cfg = cfg.withDefaults()
	var out DatasetFeatures

	sd, err := naiveSD(buf, cfg)
	if err != nil {
		return out, err
	}
	sc, err := naiveSC(buf, cfg)
	if err != nil {
		return out, err
	}
	cg, err := naiveCodingGain(buf, cfg)
	if err != nil {
		return out, err
	}
	trunc, profile, err := naiveCovSVD(buf, cfg)
	if err != nil {
		return out, err
	}
	out.SD = sd
	out.SC = sc
	out.CodingGain = cg
	out.CovSVDTrunc = trunc
	out.SingularProfile = profile
	return out, nil
}

func naiveSD(buf *grid.Buffer, cfg Config) (float64, error) {
	t, err := grid.NewBlocking(buf, cfg.K)
	if err != nil {
		return 0, err
	}
	b := t.NumBlocks()
	vecs := standardizedVecs(buf, t)
	logB := math.Log2(float64(b))
	var sd float64
	for i := 0; i < b; i++ {
		var sumDs, sumDsDe float64
		for j := 0; j < b; j++ {
			if i == j {
				continue
			}
			ds := t.ManhattanDist(i, j)
			de := stats.EuclideanDist(vecs[i], vecs[j])
			sumDs += ds
			sumDsDe += ds * de
		}
		wInter := 0.0
		if sumDs > 0 {
			wInter = sumDsDe / sumDs
		}
		sd += stats.StdDev(vecs[i]) * wInter * logB / float64(b)
	}
	return sd, nil
}

func naiveSC(buf *grid.Buffer, cfg Config) (float64, error) {
	t, err := grid.NewBlocking(buf, cfg.K)
	if err != nil {
		return 0, err
	}
	b := t.NumBlocks()
	vecs := standardizedVecs(buf, t)
	var num, den float64
	for i := 0; i < b; i++ {
		var sumDs, sumDsV float64
		for j := 0; j < b; j++ {
			if i == j {
				continue
			}
			ds := t.ManhattanDist(i, j)
			sumDs += ds
			sumDsV += ds * math.Abs(stats.Pearson(vecs[i], vecs[j]))
		}
		scb := 0.0
		if sumDs > 0 {
			scb = sumDsV / sumDs
		}
		w := stats.StdDev(vecs[i])
		num += scb * w
		den += w
	}
	if den == 0 {
		return 0, nil
	}
	return num / den, nil
}

func naiveSecondMoment(buf *grid.Buffer, cfg Config) (*linalg.Matrix, error) {
	t, err := grid.NewBlocking(buf, cfg.K)
	if err != nil {
		return nil, err
	}
	b := t.NumBlocks()
	k2 := cfg.K * cfg.K
	sigma := linalg.NewMatrix(k2, k2)
	vecs := standardizedVecs(buf, t)
	for i := 0; i < b; i++ {
		sigma.AddOuter(vecs[i], 1/float64(b))
	}
	return sigma, nil
}

// standardizedVecs vectorizes blocks on the globally standardized buffer,
// matching the fused path's scale-free convention.
func standardizedVecs(buf *grid.Buffer, t *grid.Blocking) [][]float64 {
	vecs := t.VecAll()
	gm, gsd := stats.MeanStd(buf.Data)
	if gsd == 0 {
		gsd = 1
	}
	for _, vec := range vecs {
		for j, v := range vec {
			vec[j] = (v - gm) / gsd
		}
	}
	return vecs
}

func naiveCodingGain(buf *grid.Buffer, cfg Config) (float64, error) {
	sigma, err := naiveSecondMoment(buf, cfg)
	if err != nil {
		return 0, err
	}
	eig := linalg.SymEigenValues(sigma)
	return codingGain(sigma, eig), nil
}

// NaiveCovSVDTrunc computes only the CovSVD truncation (and decay
// profile) through the standalone path, the way prior approaches such as
// Underwood's compute it.
func NaiveCovSVDTrunc(buf *grid.Buffer, cfg Config) (float64, []float64, error) {
	return naiveCovSVD(buf, cfg.withDefaults())
}

func naiveCovSVD(buf *grid.Buffer, cfg Config) (float64, []float64, error) {
	sigma, err := naiveSecondMoment(buf, cfg)
	if err != nil {
		return 0, nil, err
	}
	eig := linalg.SymEigenValues(sigma)
	trunc, profile := covSVDTrunc(eig, false)
	return trunc, profile, nil
}
