package predictors

// stream.go is the one-pass, chunk-fed front end of the predictor
// pipeline (ROADMAP item 2): rows arrive through an io.Reader-backed
// grid.ChunkReader and are scattered straight into the vectorized block
// matrix V, so the raw row-major buffer is never materialized. Working
// memory per slice is V plus the pooled kernel scratch — independent of
// how many slices (3D planes or time steps) the stream carries, which is
// what makes a multi-GB volume estimable on a machine that holds one
// slice.
//
// Bit-identity contract (enforced by the differential suite): for every
// chunk size and worker count, the streamed features are bit-identical to
// ComputeDataset/ComputeEB over the same slice held in memory, because
// each reduction is fed the identical values in the identical order:
//
//   - The global moments accumulate s += v, s2 += v*v per element in
//     row-major arrival order — exactly stats.MeanStd's single pass.
//   - Block vectorization places each element at the same V coordinate a
//     grid.Blocking.Vec copy would; standardization and the per-block
//     moments then run the same per-block loops as fillBlockStats.
//   - The pairwise/Gram/eigen back half is literally shared code
//     (finishDataset), already bit-identical across worker counts.
//   - The entropy estimators are functions of the value multiset only
//     (see stats/segments.go), so feeding them V-plus-crop instead of
//     the row-major buffer changes nothing.
//
// float32 streams are widened exactly by the reader, so the contract
// holds verbatim against the in-memory path over the widened values; the
// only loss is the encoder's ½-ULP-of-float32 narrowing.

import (
	"fmt"
	"io"
	"math"
	"time"

	"github.com/crestlab/crest/internal/crerr"
	"github.com/crestlab/crest/internal/grid"
	"github.com/crestlab/crest/internal/stats"
)

// StreamFeaturizer computes the predictor features of one 2D slice from
// rows fed incrementally. It is not safe for concurrent use; Reset
// re-arms it for the next slice of the same shape reusing all of its
// memory, so a long stream costs a constant number of allocations per
// slice.
type StreamFeaturizer struct {
	cfg        Config
	rows, cols int
	k, br, bc  int
	b, k2      int

	s *dsScratch

	rowIdx int
	// Global moments accumulated in row-major element order (the exact
	// stats.MeanStd pass over the equivalent in-memory buffer).
	sum, sum2 float64
	// crop holds the raw values outside the k-divisible region (right
	// margin and bottom rows) so the error-bound entropies see the whole
	// slice, exactly like the in-memory path.
	crop []float64
	// segs is the pooled segment list handed to the entropy estimators.
	segs [][]float64

	tStart   time.Time
	finished bool
}

// NewStreamFeaturizer prepares a featurizer for rows×cols slices under
// cfg. Like grid.NewBlocking it crops to the largest multiple of K and
// rejects slices smaller than one block.
func NewStreamFeaturizer(rows, cols int, cfg Config) (*StreamFeaturizer, error) {
	cfg = cfg.withDefaults()
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("predictors: %w: slice shape %dx%d", crerr.ErrInvalidBuffer, rows, cols)
	}
	br, bc := rows/cfg.K, cols/cfg.K
	if br == 0 || bc == 0 {
		return nil, fmt.Errorf("predictors: %w: %dx%d slice with k=%d", grid.ErrNotTileable, rows, cols, cfg.K)
	}
	k2 := cfg.K * cfg.K
	f := &StreamFeaturizer{
		cfg:  cfg,
		rows: rows, cols: cols,
		k: cfg.K, br: br, bc: bc,
		b: br * bc, k2: k2,
	}
	f.arm()
	return f, nil
}

// arm checks out pooled scratch and zeroes the per-slice state.
func (f *StreamFeaturizer) arm() {
	f.s = getScratch(f.b, f.k2)
	// getScratch sizes the backing but leaves carving it into block rows
	// to the in-memory path's VecAllInto; the streaming scatter writes
	// through the rows directly, so carve them here — never trusting
	// whatever stale rows a pooled scratch may carry from a differently
	// shaped earlier call.
	for i := 0; i < f.b; i++ {
		f.s.vecs[i] = f.s.backing[i*f.k2 : (i+1)*f.k2]
	}
	f.s.fk2 = float64(f.k2)
	f.s.invK2 = 0
	if f.k2&(f.k2-1) == 0 {
		f.s.invK2 = 1 / f.s.fk2
	}
	f.rowIdx = 0
	f.sum, f.sum2 = 0, 0
	f.crop = f.crop[:0]
	f.finished = false
	f.tStart = time.Now()
}

// AddRow feeds the next row (length cols) of the current slice. The row
// is consumed before return; the caller may reuse its backing storage.
// Non-finite values fail fast with a typed error — the strict
// DefaultValidation policy of the in-memory path — so a poisoned stream
// can never produce partial or NaN features.
func (f *StreamFeaturizer) AddRow(row []float64) error {
	if f.finished {
		return fmt.Errorf("predictors: %w: AddRow after Finish", crerr.ErrInvalidBuffer)
	}
	if len(row) != f.cols {
		return fmt.Errorf("predictors: %w: row length %d, want %d", crerr.ErrInvalidBuffer, len(row), f.cols)
	}
	if f.rowIdx >= f.rows {
		return fmt.Errorf("predictors: %w: row %d past slice of %d rows", crerr.ErrInvalidBuffer, f.rowIdx, f.rows)
	}
	for c, v := range row {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("predictors: %w: value at row %d col %d is %g",
				crerr.ErrNonFiniteData, f.rowIdx, c, v)
		}
		f.sum += v
		f.sum2 += v * v
	}
	r := f.rowIdx
	if r < f.br*f.k {
		// Scatter the in-grid prefix into the block matrix: element
		// (r, c) lands at V[(r/k)·Bc + c/k][(r%k)·k + c%k], the exact
		// coordinate a Blocking.Vec copy assigns it.
		rowBase := (r / f.k) * f.bc
		within := (r % f.k) * f.k
		for bcIdx := 0; bcIdx < f.bc; bcIdx++ {
			copy(f.s.vecs[rowBase+bcIdx][within:within+f.k], row[bcIdx*f.k:(bcIdx+1)*f.k])
		}
		f.crop = append(f.crop, row[f.bc*f.k:]...)
	} else {
		// Bottom crop rows: outside every block, but still part of the
		// global moments and the error-bound entropies.
		f.crop = append(f.crop, row...)
	}
	f.rowIdx++
	return nil
}

// RowsFed returns how many rows of the current slice have arrived.
func (f *StreamFeaturizer) RowsFed() int { return f.rowIdx }

// Finish evaluates the four dataset predictors — and one generic
// distortion per requested error bound — for the completed slice. The
// distortions slice is aligned with eps. After Finish the featurizer
// must be Reset (next slice) or Closed (done).
func (f *StreamFeaturizer) Finish(eps ...float64) (DatasetFeatures, []float64, error) {
	if f.finished {
		return DatasetFeatures{}, nil, fmt.Errorf("predictors: %w: Finish called twice", crerr.ErrInvalidBuffer)
	}
	if f.rowIdx != f.rows {
		return DatasetFeatures{}, nil, fmt.Errorf("predictors: %w: Finish after %d of %d rows",
			crerr.ErrInvalidBuffer, f.rowIdx, f.rows)
	}
	for _, e := range eps {
		if e <= 0 || math.IsNaN(e) || math.IsInf(e, 0) {
			return DatasetFeatures{}, nil, fmt.Errorf("predictors: %w: error bound must be positive and finite, got %g",
				crerr.ErrInvalidBuffer, e)
		}
	}
	f.finished = true
	s := f.s

	// Error-bound entropies run on the raw retained values (V is still
	// unstandardized here), matching ComputeEB over the whole buffer.
	var distortions []float64
	if len(eps) > 0 {
		bins := f.cfg.Bins
		if bins < 256 {
			bins = 1024 // buffer-level estimation supports a finer histogram
		}
		if cap(f.segs) < f.b+1 {
			f.segs = make([][]float64, f.b+1)
		}
		f.segs = f.segs[:0]
		for i := 0; i < f.b; i++ {
			f.segs = append(f.segs, s.vecs[i])
		}
		if len(f.crop) > 0 {
			f.segs = append(f.segs, f.crop)
		}
		distortions = make([]float64, len(eps))
		t0 := time.Now()
		h := stats.HistogramEntropySeg(f.segs, bins)
		for i, e := range eps {
			hq := stats.QuantizedEntropySeg(f.segs, e)
			distortions[i] = 2*h - 2*hq - math.Log2(12)
		}
		obsDist.Observe(time.Since(t0).Seconds())
	}

	// Global standardization from the streamed moments: the accumulation
	// order was row-major element order, so gm/gsd carry the same bits as
	// stats.MeanStd over the assembled buffer.
	n := float64(f.rows) * float64(f.cols)
	gm := f.sum / n
	gv := f.sum2/n - gm*gm
	if gv < 0 {
		gv = 0 // numerical guard (same as stats.MeanStd)
	}
	gsd := math.Sqrt(gv)
	if gsd == 0 {
		gsd = 1
	}
	for i := 0; i < f.b; i++ {
		vec := f.s.vecs[i]
		for j, v := range vec {
			vec[j] = (v - gm) / gsd
		}
		m, sd := stats.MeanStd(vec)
		s.mean[i], s.sd[i] = m, sd
		var n2 float64
		for _, v := range vec {
			n2 += v * v
		}
		s.norm2[i] = n2
		s.posR[i], s.posC[i] = float64(i/f.bc), float64(i%f.bc)
	}
	setup := time.Since(f.tStart).Seconds()
	df := finishDataset(s, f.b, f.k2, f.cfg.Workers, setup)
	return df, distortions, nil
}

// Reset re-arms the featurizer for the next slice of the same shape,
// reusing the held scratch — the piece that keeps a long stream's
// allocations per slice constant.
func (f *StreamFeaturizer) Reset() {
	if f.s == nil {
		f.arm()
		return
	}
	f.rowIdx = 0
	f.sum, f.sum2 = 0, 0
	f.crop = f.crop[:0]
	f.finished = false
	f.tStart = time.Now()
}

// Close releases the pooled scratch. The featurizer is unusable after.
func (f *StreamFeaturizer) Close() {
	if f.s != nil {
		putScratch(f.s)
		f.s = nil
	}
}

// SliceFeatures are the streamed predictor outputs of one slice.
type SliceFeatures struct {
	// Step is the slice index within the stream (z plane or time step).
	Step int
	// Dataset carries the four error-bound-agnostic predictors.
	Dataset DatasetFeatures
	// Distortions holds one generic distortion per requested error
	// bound, aligned with the eps argument.
	Distortions []float64
}

// FeaturesAt assembles the full covariate vector for error bound i.
func (sf SliceFeatures) FeaturesAt(i int) Features {
	return Combine(sf.Dataset, sf.Distortions[i])
}

// ForEachSlice drains a chunk stream slice by slice, invoking fn with
// each slice's features as soon as its last row arrives. Working memory
// is one slice plus pooled scratch, independent of the stream's length;
// fn returning an error aborts the drain. The row buffer and featurizer
// are reused across slices.
func ForEachSlice(cr *grid.ChunkReader, eps []float64, cfg Config, fn func(SliceFeatures) error) error {
	hdr := cr.Header()
	f, err := NewStreamFeaturizer(hdr.Rows, hdr.Cols, cfg)
	if err != nil {
		return err
	}
	defer f.Close()
	row := make([]float64, hdr.Cols)
	step := 0
	for {
		err := cr.ReadRow(row)
		if err == io.EOF {
			if f.RowsFed() != 0 {
				// Unreachable with a contract-honoring ChunkReader (EOF
				// only lands on slice boundaries), kept as a guard.
				return fmt.Errorf("predictors: %w: stream ended mid-slice", crerr.ErrStreamCorrupt)
			}
			return nil
		}
		if err != nil {
			return err
		}
		if err := f.AddRow(row); err != nil {
			return err
		}
		if f.RowsFed() == hdr.Rows {
			df, dist, err := f.Finish(eps...)
			if err != nil {
				return err
			}
			if err := fn(SliceFeatures{Step: step, Dataset: df, Distortions: dist}); err != nil {
				return err
			}
			step++
			f.Reset()
		}
	}
}

// ComputeStream drains a chunk stream and returns the per-slice features.
// It is ForEachSlice with accumulation — the convenience shape for CLI
// and tests; servers that must bound memory strictly use the callback.
func ComputeStream(cr *grid.ChunkReader, eps []float64, cfg Config) ([]SliceFeatures, error) {
	var out []SliceFeatures
	err := ForEachSlice(cr, eps, cfg, func(sf SliceFeatures) error {
		out = append(out, sf)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
