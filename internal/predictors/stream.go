package predictors

// stream.go is the one-pass, chunk-fed front end of the predictor
// pipeline (ROADMAP item 2): rows arrive through an io.Reader-backed
// grid.ChunkReader and are scattered straight into the vectorized block
// matrix V, so the raw row-major buffer is never materialized. Working
// memory per slice is V plus the pooled kernel scratch — independent of
// how many slices (3D planes or time steps) the stream carries, which is
// what makes a multi-GB volume estimable on a machine that holds one
// slice.
//
// Bit-identity contract (enforced by the differential suite): for every
// chunk size and worker count, the streamed features are bit-identical to
// the same-precision in-memory path over the same slice, because each
// reduction is fed the identical values in the identical order:
//
//   - The global moments accumulate s += v, s2 += v*v per (widened)
//     element in row-major arrival order — exactly stats.MeanStd's
//     single pass.
//   - Block vectorization places each element at the same V coordinate a
//     grid.Blocking.Vec copy would; standardization, the per-block
//     moments, and the second-moment triangle then run as one fused
//     traversal (linalg.FusedBlockMoments) shared with the in-memory
//     path.
//   - The pairwise/Gram/eigen back half is literally shared code
//     (finishDataset), already bit-identical across worker counts.
//   - The entropy estimators are functions of the value multiset only
//     (see stats/segments.go), so feeding them V-plus-crop instead of
//     the row-major buffer changes nothing.
//
// The core is generic over the element type. float64 streams take the
// bit-exact reference path. float32 streams (dtype 1) are consumed
// natively — payload bits land in a float32 V at half the memory
// traffic, and the in-memory float32 entry points (ComputeDataset32,
// Compute32) run through this same core, so in-memory and streamed
// float32 features are bit-identical by construction. Against the
// float64 path over the widened values, float32 features carry the
// documented ULP-level differences of the narrow kernels (see DESIGN.md
// "Performance").

import (
	"fmt"
	"io"
	"math"
	"sync"
	"time"

	"github.com/crestlab/crest/internal/crerr"
	"github.com/crestlab/crest/internal/grid"
	"github.com/crestlab/crest/internal/linalg"
	"github.com/crestlab/crest/internal/stats"
)

// streamFeaturizer is the precision-generic core of StreamFeaturizer and
// StreamFeaturizer32. It is not safe for concurrent use; Reset re-arms
// it for the next slice of the same shape reusing all of its memory, so
// a long stream costs a constant number of allocations per slice.
type streamFeaturizer[F linalg.Float] struct {
	cfg        Config
	rows, cols int
	k, br, bc  int
	b, k2      int

	s *dsScratch[F]

	rowIdx int
	// Global moments accumulated in row-major element order (the exact
	// stats.MeanStd pass over the equivalent in-memory buffer).
	sum, sum2 float64
	// crop holds the raw values outside the k-divisible region (right
	// margin and bottom rows) so the error-bound entropies see the whole
	// slice, exactly like the in-memory path.
	crop []F
	// segs is the pooled segment list handed to the entropy estimators.
	segs [][]F

	tStart   time.Time
	finished bool
}

// newStreamCore prepares a featurizer core for rows×cols slices under
// cfg. Like grid.NewBlocking it crops to the largest multiple of K and
// rejects slices smaller than one block.
func newStreamCore[F linalg.Float](rows, cols int, cfg Config) (*streamFeaturizer[F], error) {
	cfg = cfg.withDefaults()
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("predictors: %w: slice shape %dx%d", crerr.ErrInvalidBuffer, rows, cols)
	}
	br, bc := rows/cfg.K, cols/cfg.K
	if br == 0 || bc == 0 {
		return nil, fmt.Errorf("predictors: %w: %dx%d slice with k=%d", grid.ErrNotTileable, rows, cols, cfg.K)
	}
	k2 := cfg.K * cfg.K
	f := &streamFeaturizer[F]{
		cfg:  cfg,
		rows: rows, cols: cols,
		k: cfg.K, br: br, bc: bc,
		b: br * bc, k2: k2,
	}
	f.arm()
	return f, nil
}

// corePool64/corePool32 recycle whole featurizer cores for the internal
// in-memory entry points (compute32), which otherwise allocate one core
// struct per call. The public constructors deliberately do NOT use the
// pools: they copy the core into an exported wrapper struct, and a
// pooled object must never alias a caller-held copy.
var (
	corePool64 = sync.Pool{New: func() any { return new(streamFeaturizer[float64]) }}
	corePool32 = sync.Pool{New: func() any { return new(streamFeaturizer[float32]) }}
)

// getCore is newStreamCore backed by the core pools; release with
// putCore (not Close).
func getCore[F linalg.Float](rows, cols int, cfg Config) (*streamFeaturizer[F], error) {
	cfg = cfg.withDefaults()
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("predictors: %w: slice shape %dx%d", crerr.ErrInvalidBuffer, rows, cols)
	}
	br, bc := rows/cfg.K, cols/cfg.K
	if br == 0 || bc == 0 {
		return nil, fmt.Errorf("predictors: %w: %dx%d slice with k=%d", grid.ErrNotTileable, rows, cols, cfg.K)
	}
	var f *streamFeaturizer[F]
	switch p := any(&f).(type) {
	case **streamFeaturizer[float64]:
		*p = corePool64.Get().(*streamFeaturizer[float64])
	case **streamFeaturizer[float32]:
		*p = corePool32.Get().(*streamFeaturizer[float32])
	}
	// Reinitialize every shape field while keeping the recycled crop and
	// segment capacity (the same shape-reuse contract as getScratch).
	crop, segs := f.crop, f.segs
	*f = streamFeaturizer[F]{
		cfg:  cfg,
		rows: rows, cols: cols,
		k: cfg.K, br: br, bc: bc,
		b: br * bc, k2: cfg.K * cfg.K,
		crop: crop[:0], segs: segs[:0],
	}
	f.arm()
	return f, nil
}

// putCore releases a getCore featurizer and its scratch to the pools.
func putCore[F linalg.Float](f *streamFeaturizer[F]) {
	if f.s != nil {
		putScratch(f.s)
		f.s = nil
	}
	switch t := any(f).(type) {
	case *streamFeaturizer[float64]:
		corePool64.Put(t)
	case *streamFeaturizer[float32]:
		corePool32.Put(t)
	}
}

// arm checks out pooled scratch and zeroes the per-slice state.
// getScratch re-carves the block rows from the backing for the current
// shape, so a pooled scratch can never leak geometry from a differently
// shaped earlier call.
func (f *streamFeaturizer[F]) arm() {
	f.s = getScratch[F](f.b, f.k2)
	f.s.fk2 = float64(f.k2)
	f.s.invK2 = 0
	if f.k2&(f.k2-1) == 0 {
		f.s.invK2 = 1 / f.s.fk2
	}
	f.rowIdx = 0
	f.sum, f.sum2 = 0, 0
	f.crop = f.crop[:0]
	f.finished = false
	f.tStart = time.Now()
}

// AddRow feeds the next row (length cols) of the current slice. The row
// is consumed before return; the caller may reuse its backing storage.
// Non-finite values fail fast with a typed error — the strict
// DefaultValidation policy of the in-memory path — so a poisoned stream
// can never produce partial or NaN features.
func (f *streamFeaturizer[F]) AddRow(row []F) error {
	if f.finished {
		return fmt.Errorf("predictors: %w: AddRow after Finish", crerr.ErrInvalidBuffer)
	}
	if len(row) != f.cols {
		return fmt.Errorf("predictors: %w: row length %d, want %d", crerr.ErrInvalidBuffer, len(row), f.cols)
	}
	if f.rowIdx >= f.rows {
		return fmt.Errorf("predictors: %w: row %d past slice of %d rows", crerr.ErrInvalidBuffer, f.rowIdx, f.rows)
	}
	for c, raw := range row {
		v := float64(raw)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("predictors: %w: value at row %d col %d is %g",
				crerr.ErrNonFiniteData, f.rowIdx, c, v)
		}
		f.sum += v
		f.sum2 += v * v
	}
	r := f.rowIdx
	if r < f.br*f.k {
		// Scatter the in-grid prefix into the block matrix: element
		// (r, c) lands at V[(r/k)·Bc + c/k][(r%k)·k + c%k], the exact
		// coordinate a Blocking.Vec copy assigns it.
		rowBase := (r / f.k) * f.bc
		within := (r % f.k) * f.k
		for bcIdx := 0; bcIdx < f.bc; bcIdx++ {
			copy(f.s.vecs[rowBase+bcIdx][within:within+f.k], row[bcIdx*f.k:(bcIdx+1)*f.k])
		}
		f.crop = append(f.crop, row[f.bc*f.k:]...)
	} else {
		// Bottom crop rows: outside every block, but still part of the
		// global moments and the error-bound entropies.
		f.crop = append(f.crop, row...)
	}
	f.rowIdx++
	return nil
}

// RowsFed returns how many rows of the current slice have arrived.
func (f *streamFeaturizer[F]) RowsFed() int { return f.rowIdx }

// Finish evaluates the four dataset predictors — and one generic
// distortion per requested error bound — for the completed slice. The
// distortions slice is aligned with eps. After Finish the featurizer
// must be Reset (next slice) or Closed (done).
func (f *streamFeaturizer[F]) Finish(eps ...float64) (DatasetFeatures, []float64, error) {
	if f.finished {
		return DatasetFeatures{}, nil, fmt.Errorf("predictors: %w: Finish called twice", crerr.ErrInvalidBuffer)
	}
	if f.rowIdx != f.rows {
		return DatasetFeatures{}, nil, fmt.Errorf("predictors: %w: Finish after %d of %d rows",
			crerr.ErrInvalidBuffer, f.rowIdx, f.rows)
	}
	for _, e := range eps {
		if err := validateEps(e); err != nil {
			return DatasetFeatures{}, nil, err
		}
	}
	f.finished = true
	s := f.s

	// Error-bound entropies run on the raw retained values (V is still
	// unstandardized here), matching ComputeEB over the whole buffer.
	var distortions []float64
	if len(eps) > 0 {
		if cap(f.segs) < f.b+1 {
			f.segs = make([][]F, 0, f.b+1)
		}
		f.segs = f.segs[:0]
		for i := 0; i < f.b; i++ {
			f.segs = append(f.segs, s.vecs[i])
		}
		if len(f.crop) > 0 {
			f.segs = append(f.segs, f.crop)
		}
		distortions = make([]float64, len(eps))
		t0 := time.Now()
		h := stats.HistogramEntropySeg(f.segs, ebBins(f.cfg))
		for i, e := range eps {
			hq := stats.QuantizedEntropySeg(f.segs, e)
			distortions[i] = 2*h - 2*hq - math.Log2(12)
		}
		obsDist.Observe(time.Since(t0).Seconds())
	}

	// Global standardization from the streamed moments: the accumulation
	// order was row-major element order, so gm/gsd carry the same bits as
	// stats.MeanStd over the assembled buffer. The fused traversal then
	// standardizes V and fills every per-block moment plus the
	// second-moment triangle in one pass.
	n := float64(f.rows) * float64(f.cols)
	gm := f.sum / n
	gv := f.sum2/n - gm*gm
	if gv < 0 {
		gv = 0 // numerical guard (same as stats.MeanStd)
	}
	fillBlockStats(s, gm, math.Sqrt(gv), f.b, f.bc)
	setup := time.Since(f.tStart).Seconds()
	df := finishDataset(s, f.b, f.k2, f.cfg.Workers, f.cfg.SkipProfile, setup)
	return df, distortions, nil
}

// Reset re-arms the featurizer for the next slice of the same shape,
// reusing the held scratch — the piece that keeps a long stream's
// allocations per slice constant.
func (f *streamFeaturizer[F]) Reset() {
	if f.s == nil {
		f.arm()
		return
	}
	f.rowIdx = 0
	f.sum, f.sum2 = 0, 0
	f.crop = f.crop[:0]
	f.finished = false
	f.tStart = time.Now()
}

// Close releases the pooled scratch. The featurizer is unusable after.
func (f *streamFeaturizer[F]) Close() {
	if f.s != nil {
		putScratch(f.s)
		f.s = nil
	}
}

// StreamFeaturizer computes the predictor features of one 2D slice from
// float64 rows fed incrementally — the bit-exact reference path. See
// streamFeaturizer for the reuse contract.
type StreamFeaturizer struct {
	streamFeaturizer[float64]
}

// NewStreamFeaturizer prepares a float64 featurizer for rows×cols slices
// under cfg.
func NewStreamFeaturizer(rows, cols int, cfg Config) (*StreamFeaturizer, error) {
	core, err := newStreamCore[float64](rows, cols, cfg)
	if err != nil {
		return nil, err
	}
	return &StreamFeaturizer{streamFeaturizer: *core}, nil
}

// StreamFeaturizer32 computes the predictor features of one 2D slice
// from native float32 rows — the half-bandwidth path dtype-1 CRBS
// streams take.
type StreamFeaturizer32 struct {
	streamFeaturizer[float32]
}

// NewStreamFeaturizer32 prepares a float32 featurizer for rows×cols
// slices under cfg.
func NewStreamFeaturizer32(rows, cols int, cfg Config) (*StreamFeaturizer32, error) {
	core, err := newStreamCore[float32](rows, cols, cfg)
	if err != nil {
		return nil, err
	}
	return &StreamFeaturizer32{streamFeaturizer: *core}, nil
}

// SliceFeatures are the streamed predictor outputs of one slice.
type SliceFeatures struct {
	// Step is the slice index within the stream (z plane or time step).
	Step int
	// Dataset carries the four error-bound-agnostic predictors.
	Dataset DatasetFeatures
	// Distortions holds one generic distortion per requested error
	// bound, aligned with the eps argument.
	Distortions []float64
}

// FeaturesAt assembles the full covariate vector for error bound i.
func (sf SliceFeatures) FeaturesAt(i int) Features {
	return Combine(sf.Dataset, sf.Distortions[i])
}

// readRowInto reads the next stream row at the core's native precision.
func readRowInto[F linalg.Float](cr *grid.ChunkReader, row []F) error {
	switch r := any(row).(type) {
	case []float64:
		return cr.ReadRow(r)
	case []float32:
		return cr.ReadRow32(r)
	}
	panic("predictors: unreachable row type")
}

// ForEachSlice drains a chunk stream slice by slice, invoking fn with
// each slice's features as soon as its last row arrives. Working memory
// is one slice plus pooled scratch, independent of the stream's length;
// fn returning an error aborts the drain. The row buffer and featurizer
// are reused across slices.
//
// dtype-1 (float32) streams are processed natively at float32: half the
// memory traffic, features within the documented ULP bounds of the
// float64 path instead of bit-equal to it.
func ForEachSlice(cr *grid.ChunkReader, eps []float64, cfg Config, fn func(SliceFeatures) error) error {
	if cr.Header().DType == grid.DTypeF32 {
		return forEachSlice[float32](cr, eps, cfg, fn)
	}
	return forEachSlice[float64](cr, eps, cfg, fn)
}

func forEachSlice[F linalg.Float](cr *grid.ChunkReader, eps []float64, cfg Config, fn func(SliceFeatures) error) error {
	hdr := cr.Header()
	f, err := newStreamCore[F](hdr.Rows, hdr.Cols, cfg)
	if err != nil {
		return err
	}
	defer f.Close()
	row := make([]F, hdr.Cols)
	step := 0
	for {
		err := readRowInto(cr, row)
		if err == io.EOF {
			if f.RowsFed() != 0 {
				// Unreachable with a contract-honoring ChunkReader (EOF
				// only lands on slice boundaries), kept as a guard.
				return fmt.Errorf("predictors: %w: stream ended mid-slice", crerr.ErrStreamCorrupt)
			}
			return nil
		}
		if err != nil {
			return err
		}
		if err := f.AddRow(row); err != nil {
			return err
		}
		if f.RowsFed() == hdr.Rows {
			df, dist, err := f.Finish(eps...)
			if err != nil {
				return err
			}
			if err := fn(SliceFeatures{Step: step, Dataset: df, Distortions: dist}); err != nil {
				return err
			}
			step++
			f.Reset()
		}
	}
}

// ComputeStream drains a chunk stream and returns the per-slice features.
// It is ForEachSlice with accumulation — the convenience shape for CLI
// and tests; servers that must bound memory strictly use the callback.
func ComputeStream(cr *grid.ChunkReader, eps []float64, cfg Config) ([]SliceFeatures, error) {
	var out []SliceFeatures
	err := ForEachSlice(cr, eps, cfg, func(sf SliceFeatures) error {
		out = append(out, sf)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
