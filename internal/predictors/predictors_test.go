package predictors

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/crestlab/crest/internal/grid"
	"github.com/crestlab/crest/internal/synthdata"
)

func smoothBuf(rows, cols int, noise float64, seed int64) *grid.Buffer {
	rng := rand.New(rand.NewSource(seed))
	b := grid.NewBuffer(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			b.Set(i, j, math.Sin(float64(i)/8)*math.Cos(float64(j)/11)+noise*rng.NormFloat64())
		}
	}
	return b
}

func TestFeatureVectorOrder(t *testing.T) {
	f := Features{
		DatasetFeatures: DatasetFeatures{SD: 1, SC: 2, CodingGain: 3, CovSVDTrunc: 4},
		Distortion:      5,
	}
	v := f.Vector()
	for i, want := range []float64{1, 2, 3, 4, 5} {
		if v[i] != want {
			t.Fatalf("Vector = %v", v)
		}
	}
	if len(FeatureNames) != NumFeatures || len(v) != NumFeatures {
		t.Error("feature arity mismatch")
	}
}

// TestFusedMatchesNaive: the fused single-pass implementation must agree
// with the unfused per-metric reference to floating-point tolerance — the
// differential test of §IV-C's optimization.
func TestFusedMatchesNaive(t *testing.T) {
	ds := synthdata.Hurricane(synthdata.Options{NZ: 3, NY: 48, NX: 48, Seed: 17})
	for _, field := range []string{"CLOUD", "TC", "V", "QVAPOR"} {
		buf := ds.Field(field).Buffers[0]
		fused, err := ComputeDataset(buf, Config{})
		if err != nil {
			t.Fatal(err)
		}
		naive, err := NaiveComputeDataset(buf, Config{})
		if err != nil {
			t.Fatal(err)
		}
		tol := 1e-6
		if rel(fused.SD, naive.SD) > tol {
			t.Errorf("%s SD fused %g vs naive %g", field, fused.SD, naive.SD)
		}
		if rel(fused.SC, naive.SC) > tol {
			t.Errorf("%s SC fused %g vs naive %g", field, fused.SC, naive.SC)
		}
		if rel(fused.CodingGain, naive.CodingGain) > 1e-4 {
			t.Errorf("%s CG fused %g vs naive %g", field, fused.CodingGain, naive.CodingGain)
		}
		if fused.CovSVDTrunc != naive.CovSVDTrunc {
			t.Errorf("%s CovSVD fused %g vs naive %g", field, fused.CovSVDTrunc, naive.CovSVDTrunc)
		}
	}
}

func rel(a, b float64) float64 {
	return math.Abs(a-b) / (1 + math.Max(math.Abs(a), math.Abs(b)))
}

// TestWorkerCountInvariance: results must not depend on parallelism.
func TestWorkerCountInvariance(t *testing.T) {
	buf := smoothBuf(64, 48, 0.05, 23)
	base, err := ComputeDataset(buf, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 16} {
		got, err := ComputeDataset(buf, Config{Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		if rel(got.SD, base.SD) > 1e-9 || rel(got.SC, base.SC) > 1e-9 ||
			rel(got.CodingGain, base.CodingGain) > 1e-9 || got.CovSVDTrunc != base.CovSVDTrunc {
			t.Errorf("workers=%d results differ: %+v vs %+v", w, got, base)
		}
	}
}

// TestScaleInvariance: the four dataset features are scale- and
// shift-free, the property out-of-field transfer depends on.
func TestScaleInvariance(t *testing.T) {
	buf := smoothBuf(48, 48, 0.1, 29)
	scaled := buf.Clone()
	for i := range scaled.Data {
		scaled.Data[i] = scaled.Data[i]*12345 + 678
	}
	a, err := ComputeDataset(buf, Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ComputeDataset(scaled, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rel(a.SD, b.SD) > 1e-9 || rel(a.SC, b.SC) > 1e-9 ||
		rel(a.CodingGain, b.CodingGain) > 1e-7 || a.CovSVDTrunc != b.CovSVDTrunc {
		t.Errorf("scaled features differ: %+v vs %+v", a, b)
	}
}

func TestDistortionMonotoneInEps(t *testing.T) {
	buf := smoothBuf(48, 48, 0.1, 31)
	prev := math.Inf(-1)
	for _, eps := range []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2} {
		d, err := ComputeEB(buf, eps, Config{})
		if err != nil {
			t.Fatal(err)
		}
		// Looser bound ⇒ lower quantized entropy ⇒ larger log-distortion.
		if d < prev-1e-9 {
			t.Errorf("distortion not nondecreasing: %g after %g at eps=%g", d, prev, eps)
		}
		prev = d
	}
}

func TestDistortionSensitiveToRoughness(t *testing.T) {
	smooth := smoothBuf(48, 48, 0.0, 37)
	noisy := smoothBuf(48, 48, 1.0, 37)
	ds, err := ComputeEB(smooth, 1e-4, Config{})
	if err != nil {
		t.Fatal(err)
	}
	dn, err := ComputeEB(noisy, 1e-4, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Rough data has higher quantized entropy ⇒ lower log-distortion.
	if dn >= ds {
		t.Errorf("noisy distortion %g not below smooth %g", dn, ds)
	}
}

func TestSmootherFieldHasLowerCovSVDTrunc(t *testing.T) {
	smooth := smoothBuf(64, 64, 0.0, 41)
	noisy := smoothBuf(64, 64, 2.0, 41)
	a, err := ComputeDataset(smooth, Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ComputeDataset(noisy, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if a.CovSVDTrunc >= b.CovSVDTrunc {
		t.Errorf("smooth CovSVD %g not below noisy %g", a.CovSVDTrunc, b.CovSVDTrunc)
	}
	if a.CodingGain <= b.CodingGain {
		t.Errorf("smooth coding gain %g not above noisy %g", a.CodingGain, b.CodingGain)
	}
}

func TestConstantBufferDegenerates(t *testing.T) {
	buf := grid.NewBuffer(32, 32)
	for i := range buf.Data {
		buf.Data[i] = 5
	}
	df, err := ComputeDataset(buf, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if df.SD != 0 || df.SC != 0 {
		t.Errorf("constant buffer SD=%g SC=%g", df.SD, df.SC)
	}
	if math.IsNaN(df.CodingGain) || math.IsNaN(df.CovSVDTrunc) {
		t.Error("constant buffer produced NaN features")
	}
	if _, err := ComputeEB(buf, 1e-3, Config{}); err != nil {
		t.Errorf("ComputeEB on constant buffer: %v", err)
	}
}

func TestErrors(t *testing.T) {
	tiny := grid.NewBuffer(3, 3)
	if _, err := ComputeDataset(tiny, Config{K: 8}); err == nil {
		t.Error("untileable buffer accepted")
	}
	buf := smoothBuf(16, 16, 0, 1)
	if _, err := ComputeEB(buf, 0, Config{}); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := ComputeEB(buf, -1, Config{}); err == nil {
		t.Error("eps<0 accepted")
	}
}

func TestCombine(t *testing.T) {
	df := DatasetFeatures{SD: 1, SC: 2, CodingGain: 3, CovSVDTrunc: 4}
	f := Combine(df, 9)
	if f.Distortion != 9 || f.SD != 1 {
		t.Errorf("Combine = %+v", f)
	}
}

func TestSingularProfileNormalized(t *testing.T) {
	buf := smoothBuf(48, 48, 0.2, 43)
	df, err := ComputeDataset(buf, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	prev := math.Inf(1)
	for _, v := range df.SingularProfile {
		if v < -1e-12 {
			t.Fatalf("negative profile entry %g", v)
		}
		if v > prev+1e-12 {
			t.Fatal("profile not nonincreasing")
		}
		prev = v
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("profile sums to %g", sum)
	}
}

// TestComputeNeverNaN: features stay finite for arbitrary data.
func TestComputeNeverNaN(t *testing.T) {
	prop := func(seed int64, scaleExp int8) bool {
		rng := rand.New(rand.NewSource(seed))
		buf := grid.NewBuffer(24, 24)
		scale := math.Pow(10, float64(scaleExp%30))
		for i := range buf.Data {
			buf.Data[i] = rng.NormFloat64() * scale
		}
		f, err := Compute(buf, 1e-3, Config{})
		if err != nil {
			return false
		}
		for _, v := range f.Vector() {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestComputeVolume(t *testing.T) {
	ds := synthdata.Miranda(synthdata.Options{NZ: 6, NY: 32, NX: 32, Seed: 51})
	vol := &grid.Volume{NZ: 6, NY: 32, NX: 32, Data: nil}
	// Rebuild a volume from the field's contiguous slices.
	f := ds.Field("density")
	vol.Data = make([]float64, 0, 6*32*32)
	for _, b := range f.Buffers {
		vol.Data = append(vol.Data, b.Data...)
	}
	vf, err := ComputeVolume(vol, 1e-3, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// The pooled mean must match the average of per-slice features.
	var sdSum float64
	for _, b := range f.Buffers {
		df, err := ComputeDataset(b, Config{})
		if err != nil {
			t.Fatal(err)
		}
		sdSum += df.SD
	}
	if rel(vf.Mean.SD, sdSum/6) > 1e-9 {
		t.Errorf("pooled SD %g vs mean of slices %g", vf.Mean.SD, sdSum/6)
	}
	if vf.SliceStd.SD < 0 || math.IsNaN(vf.SliceStd.SD) {
		t.Errorf("slice std = %g", vf.SliceStd.SD)
	}
	if len(vf.Mean.SingularProfile) == 0 {
		t.Error("no pooled singular profile")
	}
	if vf.Mean.Distortion == 0 {
		t.Error("volume distortion not computed")
	}
	// Workers invariance for the volume path too.
	vf2, err := ComputeVolume(vol, 1e-3, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rel(vf.Mean.SD, vf2.Mean.SD) > 1e-9 {
		t.Error("volume features depend on worker count")
	}
}
