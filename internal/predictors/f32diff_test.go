package predictors

import (
	"bytes"
	"math"
	"testing"

	"github.com/crestlab/crest/internal/grid"
)

// f32diff_test.go is the float32-vs-float64 differential suite behind
// the documented accuracy contract (DESIGN.md "Performance"): the
// native float32 pipeline must agree with the float64 reference within
// an explicit per-feature bound measured in ULPs of float32, across
// every chunk size and worker count — and must itself be bit-identical
// across those axes. CI runs it under -race next to the streaming
// bit-identity suite.

// ulp32Dist measures |a-b| in units of the float32 ULP at the
// reference magnitude — the resolution a float32-stored input could
// possibly support. Both values are float64 (the features always
// accumulate in float64); the bound says "the f32 pipeline lands
// within N single-precision ULPs of the f64 pipeline".
func ulp32Dist(ref, got float64) float64 {
	d := math.Abs(ref - got)
	if d == 0 {
		return 0
	}
	scale := math.Max(math.Abs(ref), math.Abs(got))
	// ULP of float32 at magnitude `scale`: 2^(exp-23), floored at the
	// smallest normal spacing so near-zero features don't divide by 0.
	exp := math.Ilogb(scale)
	ulp := math.Ldexp(1, exp-23)
	if ulp < math.Ldexp(1, -149) {
		ulp = math.Ldexp(1, -149)
	}
	return d / ulp
}

// Per-feature ULP budgets. Because every reduction accumulates in
// float64 on BOTH paths, the only float32-path rounding is the ½-ULP
// storage of each standardized element plus the SIMD kernels' FMA
// contraction; measured drift on the suite's shapes stays below 0.2
// float32 ULPs, so these budgets carry ~100× headroom while still
// catching any accidental float32 accumulation (which would blow past
// them by orders of magnitude).
const (
	maxULPSD    = 16 // Σ over B blocks of w^intra·w^inter terms
	maxULPSC    = 16 // ratio of two Σ-over-B reductions
	maxULPCG    = 16 // log-domain spectrum ratio
	maxULPTrunc = 16 // quantized (% of k²) spectrum truncation
	maxULPDist  = 2  // entropy widens exactly and bins in float64
)

func checkULP(t *testing.T, name string, ref, got float64, bound float64, tag string) {
	t.Helper()
	if math.IsNaN(ref) || math.IsNaN(got) {
		t.Errorf("%s %s: NaN (ref %g, f32 %g)", tag, name, ref, got)
		return
	}
	if d := ulp32Dist(ref, got); d > bound {
		t.Errorf("%s %s: f32 %.17g vs f64 %.17g differ by %.0f float32 ULPs (bound %d)",
			tag, name, got, ref, d, int(bound))
	}
}

// TestFloat32VsFloat64ULPBounds runs the same values through both
// pipelines — float64 in memory vs float32 streamed at chunk sizes
// {1, odd, 32, whole} × workers {1, 8} — and holds every feature to its
// ULP budget.
func TestFloat32VsFloat64ULPBounds(t *testing.T) {
	shapes := []struct{ rows, cols int }{
		{96, 96},
		{90, 101}, // cropped on both axes
	}
	const eps = 1e-3
	for _, shape := range shapes {
		buf := mixedMagnitudeBuffer(shape.rows, shape.cols, int64(31*shape.rows+shape.cols))
		// The f64 reference sees the SAME float32-representable values
		// the f32 pipeline sees, so the measured gap is kernel rounding,
		// not input narrowing.
		for i, v := range buf.Data {
			buf.Data[i] = float64(float32(v))
		}
		for _, workers := range []int{1, 8} {
			cfg := Config{K: 8, Workers: workers}
			ref, err := ComputeDataset(buf, cfg)
			if err != nil {
				t.Fatal(err)
			}
			refD, err := ComputeEB(buf, eps, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, chunkRows := range []int{1, 7, 32, shape.rows} {
				raw := encodeStream(t, buf, grid.DTypeF32, chunkRows)
				got := streamOnce(t, raw, eps, cfg)
				tag := tagOf(shape.rows, shape.cols, chunkRows, workers)
				checkULP(t, "SD", ref.SD, got.Dataset.SD, maxULPSD, tag)
				checkULP(t, "SC", ref.SC, got.Dataset.SC, maxULPSC, tag)
				checkULP(t, "CodingGain", ref.CodingGain, got.Dataset.CodingGain, maxULPCG, tag)
				checkULP(t, "CovSVDTrunc", ref.CovSVDTrunc, got.Dataset.CovSVDTrunc, maxULPTrunc, tag)
				checkULP(t, "Distortion", refD, got.Distortions[0], maxULPDist, tag)
			}
		}
	}
}

func tagOf(rows, cols, chunk, workers int) string {
	return "shape " + itoa(rows) + "x" + itoa(cols) +
		" chunk=" + itoa(chunk) + " workers=" + itoa(workers)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestFloat32DeterminismAcrossChunksAndWorkers pins the float32 twin of
// the float64 determinism contract: every chunk size and worker count
// must produce the SAME bits, equal to the in-memory float32 entry
// point. (float32 vs float64 is ULP-bounded; float32 vs itself is
// exact.)
func TestFloat32DeterminismAcrossChunksAndWorkers(t *testing.T) {
	buf := mixedMagnitudeBuffer(90, 101, 77)
	narrow := grid.NewBuffer32(buf.Rows, buf.Cols)
	for i, v := range buf.Data {
		narrow.Data[i] = float32(v)
	}
	const eps = 1e-3
	base, err := Compute32(narrow, eps, Config{K: 8, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 8} {
		cfg := Config{K: 8, Workers: workers}
		inMem, err := Compute32(narrow, eps, cfg)
		if err != nil {
			t.Fatal(err)
		}
		checkBitIdentical(t, base.DatasetFeatures, inMem.DatasetFeatures, workers, -1)
		for _, chunkRows := range []int{1, 7, 32, buf.Rows} {
			raw := encodeStream(t, buf, grid.DTypeF32, chunkRows)
			got := streamOnce(t, raw, eps, cfg)
			checkBitIdentical(t, base.DatasetFeatures, got.Dataset, workers, chunkRows)
			if math.Float64bits(got.Distortions[0]) != math.Float64bits(base.Distortion) {
				t.Errorf("workers=%d chunk=%d: f32 distortion not bit-stable: %.17g vs %.17g",
					workers, chunkRows, got.Distortions[0], base.Distortion)
			}
		}
	}
}

// TestFloat32StreamRoundTripMatchesInMemory feeds a float32 buffer
// through an encode→stream cycle and through Compute32 directly; both
// must agree bitwise (the stream stores the exact float32 payload).
func TestFloat32StreamRoundTripMatchesInMemory(t *testing.T) {
	narrow := grid.NewBuffer32(64, 72)
	buf := mixedMagnitudeBuffer(64, 72, 5)
	for i, v := range buf.Data {
		narrow.Data[i] = float32(v)
	}
	var enc bytes.Buffer
	if err := grid.EncodeBuffer(&enc, narrow.Widen(), grid.DTypeF32, 9); err != nil {
		t.Fatal(err)
	}
	cfg := Config{K: 8, Workers: 4}
	want, err := Compute32(narrow, 1e-2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := streamOnce(t, enc.Bytes(), 1e-2, cfg)
	checkBitIdentical(t, want.DatasetFeatures, got.Dataset, 4, 9)
}
