package predictors

import (
	"math"
	"testing"

	"github.com/crestlab/crest/internal/grid"
)

// benchBuffer synthesizes a smooth-plus-noise field of the given edge,
// deterministic so timings are comparable across runs.
func benchBuffer(edge int) *grid.Buffer {
	buf := grid.NewBuffer(edge, edge)
	for r := 0; r < edge; r++ {
		for c := 0; c < edge; c++ {
			x := float64(r) / float64(edge)
			y := float64(c) / float64(edge)
			v := math.Sin(7*x)*math.Cos(5*y) + 0.1*math.Sin(113*(x+2*y))
			buf.Set(r, c, v)
		}
	}
	return buf
}

func benchComputeDataset(b *testing.B, edge int) {
	buf := benchBuffer(edge)
	cfg := Config{K: 8, Workers: 1}
	b.SetBytes(int64(buf.SizeBytes()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ComputeDataset(buf, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkComputeDataset256(b *testing.B) { benchComputeDataset(b, 256) }
func BenchmarkComputeDataset512(b *testing.B) { benchComputeDataset(b, 512) }
