package predictors

import (
	"fmt"

	"github.com/crestlab/crest/internal/grid"
	"github.com/crestlab/crest/internal/parallel"
	"github.com/crestlab/crest/internal/stats"
)

// volume.go implements the paper's footnote-1 extension to native 3D
// volumes "using approaches similar to [3]": the four spatial predictors
// are evaluated per 2D slice and pooled across the volume (slices run in
// parallel), while the error-bound-specific generic distortion is
// estimated over the full 3D sample so it sees the volume's complete
// value distribution.

// VolumeFeatures are pooled predictors for a 3D volume at one bound.
type VolumeFeatures struct {
	// Mean holds the slice-mean of each predictor; the usable covariate
	// vector for volume-level estimation.
	Mean Features
	// SliceStd holds the across-slice standard deviation of the four
	// dataset features, a measure of along-z heterogeneity.
	SliceStd DatasetFeatures
}

// ComputeVolume evaluates the 3D extension for vol at bound eps.
func ComputeVolume(vol *grid.Volume, eps float64, cfg Config) (VolumeFeatures, error) {
	cfg = cfg.withDefaults()
	if vol.NZ < 1 {
		return VolumeFeatures{}, fmt.Errorf("predictors: empty volume")
	}
	slices := vol.Slices()
	perSlice := make([]DatasetFeatures, len(slices))
	errs := make([]error, len(slices))
	parallel.ForEachDynamic(len(slices), cfg.Workers, func(i int) {
		perSlice[i], errs[i] = ComputeDataset(slices[i], cfg)
	})
	for _, err := range errs {
		if err != nil {
			return VolumeFeatures{}, err
		}
	}
	var out VolumeFeatures
	collect := func(get func(DatasetFeatures) float64) (mean, std float64) {
		vals := make([]float64, len(perSlice))
		for i, df := range perSlice {
			vals[i] = get(df)
		}
		return stats.MeanStd(vals)
	}
	var sdStd, scStd, cgStd, covStd float64
	out.Mean.SD, sdStd = collect(func(d DatasetFeatures) float64 { return d.SD })
	out.Mean.SC, scStd = collect(func(d DatasetFeatures) float64 { return d.SC })
	out.Mean.CodingGain, cgStd = collect(func(d DatasetFeatures) float64 { return d.CodingGain })
	out.Mean.CovSVDTrunc, covStd = collect(func(d DatasetFeatures) float64 { return d.CovSVDTrunc })
	out.SliceStd = DatasetFeatures{SD: sdStd, SC: scStd, CodingGain: cgStd, CovSVDTrunc: covStd}

	// Pool the singular profiles (mean across slices) for similarity use.
	if n := len(perSlice[0].SingularProfile); n > 0 {
		profile := make([]float64, n)
		for _, df := range perSlice {
			for j, v := range df.SingularProfile {
				profile[j] += v
			}
		}
		for j := range profile {
			profile[j] /= float64(len(perSlice))
		}
		out.Mean.SingularProfile = profile
	}

	// Full-volume generic distortion.
	if eps > 0 {
		bins := cfg.Bins
		if bins < 256 {
			bins = 1024
		}
		h := stats.HistogramEntropy(vol.Data, bins)
		hq := stats.QuantizedEntropy(vol.Data, eps)
		out.Mean.Distortion = 2*h - 2*hq - log2of12
	}
	return out, nil
}

// log2of12 = log2(12), the constant of the high-rate distortion formula.
const log2of12 = 3.5849625007211561814537389439478
