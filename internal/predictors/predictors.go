// Package predictors implements the paper's five statistical
// compressibility predictors over blocked 2D buffers (§IV-A):
//
//   - Spatial Diversity (SD): spatially-weighted entropy combining
//     intra-block variability (block standard deviation) and inter-block
//     variability (location-weighted value distances).
//   - Spatial Correlation (SC): intra-block-weighted average of
//     location-weighted absolute Pearson correlations between blocks.
//   - Coding Gain (CG): geometric-mean ratio of the block second-moment
//     matrix diagonal to its eigenvalue spectrum — the KLT transform-coding
//     gain of Goyal's rate-distortion analysis.
//   - Spatial Smoothness (CovSVD-trunc): percentage of singular values of
//     the block covariance needed to reach 99% of total variance.
//   - Generic Distortion (D̂): the error-bound-specific rate-distortion
//     estimate log2 D̂ = 2H − 2H^q − log2 12 (see ComputeEB for the two
//     documented deviations from the paper's printed formula).
//
// The first four are dataset-specific but error-bound agnostic
// ("dset_predictors" in Algorithm 2) and share ONE fused traversal of the
// block matrix (linalg.FusedBlockMoments standardizes, computes every
// per-block moment, and accumulates the k²×k² second-moment matrix in a
// single pass) followed by one Gram-driven pairwise pass; D̂ depends on
// the error bound ("eb_predictors"). Following §IV-C, the pairwise pass
// is driven off rows of the Gram matrix G = V·Vᵀ produced by the
// cache-blocked (and, on amd64, SIMD) kernels in internal/linalg, with
// panels striped across workers; every float64 reduction combines
// per-index terms in fixed index order, so results are bit-identical for
// every worker count (the earlier compare-and-swap accumulators made the
// SD/SC reduction order follow goroutine scheduling).
//
// The whole pipeline is generic over the stored element type: the
// float64 instantiation is the bit-exact reference, and the float32
// instantiation (ComputeDataset32 and friends) keeps dtype-1 stream
// payloads narrow end to end — every accumulator still runs in float64,
// so features agree with the float64 path within the documented ULP
// bounds (see DESIGN.md "Performance" and the f32-vs-f64 differential
// suite). Per-call working memory comes from a sync.Pool — see
// scratch.go.
package predictors

import (
	"fmt"
	"math"
	"time"
	"unsafe"

	"github.com/crestlab/crest/internal/crerr"
	"github.com/crestlab/crest/internal/grid"
	"github.com/crestlab/crest/internal/linalg"
	"github.com/crestlab/crest/internal/obs"
	"github.com/crestlab/crest/internal/parallel"
	"github.com/crestlab/crest/internal/stats"
)

// Per-predictor latency histograms, recorded into the process-wide
// registry on every successful computation. The four dataset predictors
// share fused passes (§IV-C), so shared cost is split by a fixed,
// documented attribution — each histogram reports an even-split share of
// one pass, not an independently measured walk: the fused
// standardize/moments/second-moment traversal is divided equally across
// all four; the pairwise pass and its reduction are split between SD and
// SC; the eigendecomposition is split between CodingGain and
// CovSVDTrunc, each of which then adds its own (cheap) finishing stage.
// See DESIGN.md "Observability".
var (
	obsSD   = obs.Default().Histogram("predictor_sd_seconds", nil)
	obsSC   = obs.Default().Histogram("predictor_sc_seconds", nil)
	obsCG   = obs.Default().Histogram("predictor_coding_gain_seconds", nil)
	obsSVD  = obs.Default().Histogram("predictor_cov_svd_seconds", nil)
	obsDist = obs.Default().Histogram("predictor_distortion_seconds", nil)
)

// NumFeatures is the number of covariates of the prediction model (§IV-B).
const NumFeatures = 5

// FeatureNames lists the feature vector components in order.
var FeatureNames = [NumFeatures]string{
	"SD", "SC", "CodingGain", "CovSVDTrunc", "Distortion",
}

// Config tunes the predictor computation.
type Config struct {
	// K is the block edge length (default 8).
	K int
	// Bins is the histogram resolution for entropy estimation
	// (default 64).
	Bins int
	// Workers bounds the parallelism (default: GOMAXPROCS).
	Workers int
	// SkipProfile drops DatasetFeatures.SingularProfile, the one output
	// whose length depends on k² and therefore cannot come from the
	// pooled scratch. Hot paths that only need the scalar features
	// (batch serving, benchmarks) set it to make ComputeDataset
	// allocation-free in steady state.
	SkipProfile bool
}

func (c Config) withDefaults() Config {
	if c.K <= 0 {
		c.K = 8
	}
	if c.Bins <= 0 {
		c.Bins = 64
	}
	return c
}

// DatasetFeatures are the error-bound-agnostic predictors of one buffer.
type DatasetFeatures struct {
	SD          float64 // spatial diversity
	SC          float64 // spatial correlation
	CodingGain  float64 // log2 KLT coding gain
	CovSVDTrunc float64 // % singular values for 99% variance

	// SingularProfile is the relative decay of the singular values of the
	// block covariance (σ_i / Σσ), consumed by the field-similarity
	// analysis of §VI-E. Nil when Config.SkipProfile is set.
	SingularProfile []float64
}

// Features is the full 5-dimensional covariate vector for one buffer and
// one error bound.
type Features struct {
	DatasetFeatures
	// Distortion is log2 D̂, the generic distortion on the log scale.
	Distortion float64
}

// Vector returns the model covariates in FeatureNames order.
func (f Features) Vector() []float64 {
	return []float64{f.SD, f.SC, f.CodingGain, f.CovSVDTrunc, f.Distortion}
}

// fillBlockStats runs the fused traversal over the raw block matrix in
// s.vecs: one pass standardizes every block vector in place against the
// global moments (gm, gsd), computes the per-block mean/sd/norm², and
// accumulates the k²×k² second-moment lower triangle (see
// linalg.FusedBlockMoments — bit-identical at float64 to the separate
// passes it replaced). Block positions land as floats so the pairwise
// pass computes Manhattan distances without per-pair div/mod; the
// float32 instantiation additionally fills the narrow stat mirrors its
// vectorized pairwise reduce consumes.
//
// Standardizing first makes the four error-bound-agnostic predictors
// scale-free descriptors of *spatial structure*: two fields with the
// same shape but different physical units get the same SD/SC/CG/CovSVD,
// which is what makes out-of-field model transfer (§VI-C) possible. The
// amplitude-versus-bound information the compressors react to enters
// through the error-bound-specific generic distortion, computed on the
// raw values.
func fillBlockStats[F linalg.Float](s *dsScratch[F], gm, gsd float64, b, bc int) {
	if gsd == 0 {
		gsd = 1
	}
	linalg.FusedBlockMoments(s.vecs, gm, gsd, 1/float64(b), s.mean, s.sd, s.norm2, s.lower)
	for i := 0; i < b; i++ {
		s.posR[i], s.posC[i] = float64(i/bc), float64(i%bc)
	}
	if isF32[F]() {
		for i := 0; i < b; i++ {
			s.posR32[i] = float32(s.posR[i])
			s.posC32[i] = float32(s.posC[i])
			s.norm232[i] = float32(s.norm2[i])
			s.mean32[i] = float32(s.mean[i])
			if sd := s.sd[i]; sd > 0 {
				s.invSd32[i] = float32(1 / sd)
			} else {
				s.invSd32[i] = 0
			}
		}
	}
}

// reduceRow folds row i of the Gram matrix into the pairwise-pass outputs
// wInter[i] and scBlock[i]. row[j] must be ⟨v[i], v[j]⟩ for every j.
//
// The float64 fold runs j = 0 → B−1 with serial accumulators, the exact
// order of the pre-Gram per-pair loop, so results are bit-identical to
// it; rows are independent, so callers may stripe them across workers
// freely. The float32 fold dispatches to linalg.PairReduceF32, which
// vectorizes eight pairs at a time — deterministic for a given binary
// and CPU, ULP-equivalent (not bit-equal) to the scalar order.
func (s *dsScratch[F]) reduceRow(i int, row []F) {
	if r32, ok := any(row).([]float32); ok {
		sumDs, sumDsDe, sumDsV := linalg.PairReduceF32(
			r32, s.posR32, s.posC32, s.norm232, s.mean32, s.invSd32, i, float32(1/s.fk2))
		if sumDs > 0 {
			s.wInter[i] = sumDsDe / sumDs
			s.scBlock[i] = sumDsV / sumDs
		} else {
			s.wInter[i], s.scBlock[i] = 0, 0
		}
		return
	}
	b := len(s.vecs)
	ri, ci := s.posR[i], s.posC[i]
	n2i, mi, sdi := s.norm2[i], s.mean[i], s.sd[i]
	var sumDs, sumDsDe, sumDsV float64
	for j := 0; j < b; j++ {
		if j == i {
			continue
		}
		dot := float64(row[j])
		ds := math.Abs(ri-s.posR[j]) + math.Abs(ci-s.posC[j])
		de2 := n2i + s.norm2[j] - 2*dot
		if de2 < 0 {
			de2 = 0
		}
		de := math.Sqrt(de2)
		var rho float64
		if sdi > 0 && s.sd[j] > 0 {
			var cov float64
			if s.invK2 != 0 {
				// k² is a power of two, so multiplying by the exact
				// reciprocal rounds identically to dividing by k².
				cov = dot*s.invK2 - mi*s.mean[j]
			} else {
				cov = dot/s.fk2 - mi*s.mean[j]
			}
			rho = cov / (sdi * s.sd[j])
			if rho > 1 {
				rho = 1
			} else if rho < -1 {
				rho = -1
			}
		}
		sumDs += ds
		sumDsDe += ds * de
		sumDsV += ds * math.Abs(rho)
	}
	if sumDs > 0 {
		s.wInter[i] = sumDsDe / sumDs
		s.scBlock[i] = sumDsV / sumDs
	} else {
		// The scratch is pooled; stale values must not leak through.
		s.wInter[i], s.scBlock[i] = 0, 0
	}
}

// pairwisePass fills s.wInter and s.scBlock from Gram rows. When the full
// B×B Gram matrix fits the pool budget it is materialized once — computing
// only the lower triangle from the transposed block matrix (the layout
// the SIMD kernel broadcasts over) and mirroring, which halves the
// dot-product work and is bit-safe because IEEE multiplication commutes.
// Past the budget the pass streams row panels instead, recomputing each
// dot once per side.
func (s *dsScratch[F]) pairwisePass(b, workers int) {
	var z F
	if b*b*int(unsafe.Sizeof(z)) <= maxGramBytes {
		k2 := len(s.backing) / b
		s.gram = grow(s.gram, b*b)
		s.vt = grow(s.vt, b*k2)
		linalg.TransposeInto(s.vecs, s.vt)
		nPanels := (b + symPanelRows - 1) / symPanelRows
		// The serial branch repeats the loop bodies instead of calling
		// the parallel helpers: fn escapes into their goroutine path, so
		// even a workers==1 call would heap-allocate the closures —
		// which is exactly what the zero-steady-state-allocation
		// contract of the saturated batch path forbids.
		if parallel.Workers(workers) == 1 {
			for p := 0; p < nPanels; p++ {
				lo := p * symPanelRows
				hi := min(lo+symPanelRows, b)
				linalg.GramBlockT(s.vecs, s.vt, lo, hi, 0, hi, s.gram[lo*b:], b)
			}
			linalg.MirrorLowerUpper(s.gram, b)
			for i := 0; i < b; i++ {
				s.reduceRow(i, s.gram[i*b:(i+1)*b])
			}
			return
		}
		parallel.ForEachDynamic(nPanels, workers, func(p int) {
			lo := p * symPanelRows
			hi := min(lo+symPanelRows, b)
			linalg.GramBlockT(s.vecs, s.vt, lo, hi, 0, hi, s.gram[lo*b:], b)
		})
		linalg.MirrorLowerUpper(s.gram, b)
		parallel.ForEach(b, workers, func(i int) {
			s.reduceRow(i, s.gram[i*b:(i+1)*b])
		})
		return
	}
	nPanels := (b + streamPanelRows - 1) / streamPanelRows
	if parallel.Workers(workers) == 1 {
		for p := 0; p < nPanels; p++ {
			lo := p * streamPanelRows
			hi := min(lo+streamPanelRows, b)
			panel := getPanel[F]((hi - lo) * b)
			linalg.GramPanel(s.vecs, lo, hi, panel)
			for i := lo; i < hi; i++ {
				s.reduceRow(i, panel[(i-lo)*b:(i-lo+1)*b])
			}
			putPanel(panel)
		}
		return
	}
	parallel.ForEachDynamic(nPanels, workers, func(p int) {
		lo := p * streamPanelRows
		hi := min(lo+streamPanelRows, b)
		panel := getPanel[F]((hi - lo) * b)
		linalg.GramPanel(s.vecs, lo, hi, panel)
		for i := lo; i < hi; i++ {
			s.reduceRow(i, panel[(i-lo)*b:(i-lo+1)*b])
		}
		putPanel(panel)
	})
}

// ComputeDataset evaluates the four error-bound-agnostic predictors in one
// fused pass over block pairs (§IV-C). Results are bit-identical across
// worker counts and across calls: every reduction runs in fixed index
// order (see reduceRow, parallel.SumOrderedInto, linalg.FusedBlockMoments).
func ComputeDataset(buf *grid.Buffer, cfg Config) (DatasetFeatures, error) {
	cfg = cfg.withDefaults()
	if err := buf.Validate(grid.DefaultValidation); err != nil {
		return DatasetFeatures{}, fmt.Errorf("predictors: %w", err)
	}
	tSetup := time.Now()
	t, err := grid.MakeBlocking(buf, cfg.K)
	if err != nil {
		return DatasetFeatures{}, fmt.Errorf("predictors: %w", err)
	}
	b := t.NumBlocks()
	k2 := cfg.K * cfg.K
	s := getScratch[float64](b, k2)
	defer putScratch(s)
	s.vecs = t.VecAllInto(s.vecs, s.backing)
	gm, gsd := stats.MeanStd(buf.Data)
	fillBlockStats(s, gm, gsd, b, t.Bc)
	s.fk2 = float64(k2)
	s.invK2 = 0
	if k2&(k2-1) == 0 {
		s.invK2 = 1 / s.fk2
	}
	setup := time.Since(tSetup).Seconds()
	return finishDataset(s, b, k2, cfg.Workers, cfg.SkipProfile, setup), nil
}

// ComputeDataset32 is ComputeDataset for native float32 data. It routes
// the buffer through the same generic core as the float32 streaming
// path (scatter, fused moments, SIMD Gram, vectorized pairwise reduce),
// so its features are bit-identical to streaming the same slice as a
// dtype-1 CRBS stream — and agree with ComputeDataset over the widened
// buffer within the documented ULP bounds.
func ComputeDataset32(buf *grid.Buffer32, cfg Config) (DatasetFeatures, error) {
	df, _, err := compute32(buf, nil, cfg)
	return df, err
}

// finishDataset evaluates the four dataset predictors from a scratch
// whose block matrix V is already standardized and whose moments and
// second-moment triangle are filled (fillBlockStats). It is the shared
// back half of the in-memory and streaming paths: both feed the
// identical scratch state through the identical fixed-order kernels,
// which is what makes the streaming result bit-identical to
// ComputeDataset by construction rather than by tolerance. setup is the
// fused-traversal cost attributed across the four predictors'
// histograms.
func finishDataset[F linalg.Float](s *dsScratch[F], b, k2, workers int, skipProfile bool, setup float64) DatasetFeatures {
	// Pairwise pass: per-block inter weights and spatial correlations,
	// driven off Gram rows. Rows are independent, so panels are striped
	// across workers with no shared mutable state.
	tPair := time.Now()
	s.pairwisePass(b, workers)

	// Spatial Diversity: SD = −Σ_b w^intra_b w^inter_b p_b log2 p_b with
	// p_b = 1/B, and Spatial Correlation: SC = Σ SC_b w^intra / Σ w^intra.
	// Each sum combines per-block terms in index order, so the totals are
	// independent of the worker count.
	logB := math.Log2(float64(b))
	var sd, scNum, scDen float64
	if parallel.Workers(workers) == 1 {
		// Serial fast path without escaping closures (see pairwisePass).
		// Each accumulator sums its terms i = 0 → B−1 in one chain —
		// exactly the order SumOrderedInto sums its scratch — so the
		// two branches are bit-identical.
		for i := 0; i < b; i++ {
			sd += s.sd[i] * s.wInter[i] * logB / float64(b)
			scNum += s.scBlock[i] * s.sd[i]
			scDen += s.sd[i]
		}
	} else {
		sd = parallel.SumOrderedInto(s.terms, workers, func(i int) float64 {
			return s.sd[i] * s.wInter[i] * logB / float64(b)
		})
		scNum = parallel.SumOrderedInto(s.terms, workers, func(i int) float64 {
			return s.scBlock[i] * s.sd[i]
		})
		scDen = parallel.SumOrderedInto(s.terms, workers, func(i int) float64 {
			return s.sd[i]
		})
	}
	sc := 0.0
	if scDen > 0 {
		sc = scNum / scDen
	}
	pair := time.Since(tPair).Seconds()

	// The block second-moment matrix Σ = (1/B) Σ_b X^b (X^b)ᵀ was
	// already accumulated by the fused traversal (fillBlockStats) in
	// linalg.SecondMomentLower's exact serial order; unpack the triangle
	// and eigendecompose into the pooled working set.
	tCov := time.Now()
	sigma := linalg.Matrix{Rows: k2, Cols: k2, Data: s.sigma}
	idx := 0
	for i := 0; i < k2; i++ {
		for j := 0; j <= i; j++ {
			v := s.lower[idx]
			s.sigma[i*k2+j] = v
			s.sigma[j*k2+i] = v
			idx++
		}
	}
	eig := linalg.SymEigenValuesInto(&sigma, s.eigVals, s.eigWork)
	covEig := time.Since(tCov).Seconds()

	tCG := time.Now()
	cg := codingGain(&sigma, eig)
	cgOwn := time.Since(tCG).Seconds()
	tTrunc := time.Now()
	trunc, profile := covSVDTrunc(eig, skipProfile)
	truncOwn := time.Since(tTrunc).Seconds()

	// Record per-predictor cost under the documented fused-pass
	// attribution (see the histogram declarations above).
	share := setup / 4
	obsSD.Observe(share + pair/2)
	obsSC.Observe(share + pair/2)
	obsCG.Observe(share + covEig/2 + cgOwn)
	obsSVD.Observe(share + covEig/2 + truncOwn)

	return DatasetFeatures{
		SD:              sd,
		SC:              sc,
		CodingGain:      cg,
		CovSVDTrunc:     trunc,
		SingularProfile: profile,
	}
}

// codingGain returns the log2 transform-coding gain
// log2[(Π Σ_ii)^{1/k²} / (Π λ_i)^{1/k²}] of the block second-moment
// matrix. The log form keeps the feature on a stable scale; the paper's
// ratio is recovered as 2^CG.
func codingGain(sigma *linalg.Matrix, eig []float64) float64 {
	n := sigma.Rows
	// Eigenvalues at round-off level are numerical noise whose logs would
	// dominate the geometric mean; floor the spectrum relative to its
	// largest value (and to the diagonal scale) before taking logs.
	var scale float64
	for i := 0; i < n; i++ {
		if d := sigma.At(i, i); d > scale {
			scale = d
		}
	}
	if len(eig) > 0 && eig[0] > scale {
		scale = eig[0]
	}
	floor := math.Max(1e-300, 1e-12*scale)
	var logDiag, logEig float64
	for i := 0; i < n; i++ {
		logDiag += math.Log2(math.Max(sigma.At(i, i), floor))
		logEig += math.Log2(math.Max(eig[i], floor))
	}
	return (logDiag - logEig) / float64(n)
}

// covSVDTrunc returns the percentage of singular values needed to reach
// 99% of the spectrum mass, plus (unless skipped) the normalized decay
// profile.
func covSVDTrunc(eig []float64, skipProfile bool) (float64, []float64) {
	n := len(eig)
	var total float64
	for _, v := range eig {
		if v > 0 {
			total += v
		}
	}
	if total == 0 {
		var profile []float64
		if !skipProfile {
			profile = make([]float64, n)
		}
		return 100.0 / float64(n), profile // degenerate: rank ≤ 1 behavior
	}
	var cum float64
	m := n
	for i, v := range eig {
		if v > 0 {
			cum += v / total
		}
		if cum >= 0.99 {
			m = i + 1
			break
		}
	}
	var profile []float64
	if !skipProfile {
		profile = make([]float64, n)
		for i, v := range eig {
			if v < 0 {
				v = 0
			}
			profile[i] = v / total
		}
	}
	return 100 * float64(m) / float64(n), profile
}

// ComputeEB evaluates the error-bound-specific generic distortion of
// §IV-A on the log2 scale: log2 D̂ = 2H − 2H^q − log2 12, where H is the
// histogram entropy estimate of the data distribution and H^q the entropy
// of the ε-quantized values α(x, ε) = ⌊x/ε⌋·ε.
//
// Two deliberate deviations from the paper's printed formula, both
// documented in DESIGN.md: (1) the entropies are estimated over the whole
// buffer rather than per k²-sample block, because a k²-sample empirical
// entropy saturates at log2 k² bits and erases the error-bound signal at
// tight bounds; (2) the rate term is the per-sample quantized entropy (the
// classical Goyal form D = (1/12)·2^{2h}·2^{−2R}) rather than H/k², which
// would divide a per-sample quantity by k² a second time.
func ComputeEB(buf *grid.Buffer, eps float64, cfg Config) (float64, error) {
	cfg = cfg.withDefaults()
	if err := validateEps(eps); err != nil {
		return 0, err
	}
	if err := buf.Validate(grid.DefaultValidation); err != nil {
		return 0, fmt.Errorf("predictors: %w", err)
	}
	t0 := time.Now()
	h := stats.HistogramEntropy(buf.Data, ebBins(cfg))
	hq := stats.QuantizedEntropy(buf.Data, eps)
	obsDist.Observe(time.Since(t0).Seconds())
	return 2*h - 2*hq - math.Log2(12), nil
}

// ComputeEB32 is ComputeEB for native float32 data. The entropy
// estimators widen each element exactly and bin in float64, so the
// result is bit-identical to ComputeEB over the widened buffer.
func ComputeEB32(buf *grid.Buffer32, eps float64, cfg Config) (float64, error) {
	cfg = cfg.withDefaults()
	if err := validateEps(eps); err != nil {
		return 0, err
	}
	if err := buf.Validate(grid.DefaultValidation); err != nil {
		return 0, fmt.Errorf("predictors: %w", err)
	}
	t0 := time.Now()
	seg := [][]float32{buf.Data}
	h := stats.HistogramEntropySeg(seg, ebBins(cfg))
	hq := stats.QuantizedEntropySeg(seg, eps)
	obsDist.Observe(time.Since(t0).Seconds())
	return 2*h - 2*hq - math.Log2(12), nil
}

func validateEps(eps float64) error {
	if eps <= 0 || math.IsNaN(eps) || math.IsInf(eps, 0) {
		return fmt.Errorf("predictors: %w: error bound must be positive and finite, got %g",
			crerr.ErrInvalidBuffer, eps)
	}
	return nil
}

// ebBins is the histogram resolution of the buffer-level entropy
// estimators: buffer-level estimation supports a finer histogram than
// the per-block default.
func ebBins(cfg Config) int {
	if cfg.Bins < 256 {
		return 1024
	}
	return cfg.Bins
}

// Compute evaluates the full 5-feature covariate vector.
func Compute(buf *grid.Buffer, eps float64, cfg Config) (Features, error) {
	df, err := ComputeDataset(buf, cfg)
	if err != nil {
		return Features{}, err
	}
	d, err := ComputeEB(buf, eps, cfg)
	if err != nil {
		return Features{}, err
	}
	return Features{DatasetFeatures: df, Distortion: d}, nil
}

// Compute32 evaluates the full 5-feature covariate vector from native
// float32 data in one pass over the generic core.
func Compute32(buf *grid.Buffer32, eps float64, cfg Config) (Features, error) {
	if err := validateEps(eps); err != nil {
		return Features{}, err
	}
	df, dist, err := compute32(buf, []float64{eps}, cfg)
	if err != nil {
		return Features{}, err
	}
	return Features{DatasetFeatures: df, Distortion: dist[0]}, nil
}

// compute32 feeds a float32 buffer row by row through the generic
// streaming core — the identical code path a dtype-1 CRBS stream takes —
// so the in-memory and streamed float32 features are bit-identical by
// construction.
func compute32(buf *grid.Buffer32, eps []float64, cfg Config) (DatasetFeatures, []float64, error) {
	if err := buf.Validate(grid.DefaultValidation); err != nil {
		return DatasetFeatures{}, nil, fmt.Errorf("predictors: %w", err)
	}
	f, err := getCore[float32](buf.Rows, buf.Cols, cfg)
	if err != nil {
		return DatasetFeatures{}, nil, err
	}
	defer putCore(f)
	for r := 0; r < buf.Rows; r++ {
		if err := f.AddRow(buf.Data[r*buf.Cols : (r+1)*buf.Cols]); err != nil {
			return DatasetFeatures{}, nil, err
		}
	}
	return f.Finish(eps...)
}

// Combine merges previously computed dataset features with a fresh
// error-bound-specific distortion, the split Algorithm 2 uses to avoid
// recomputation across error bounds.
func Combine(df DatasetFeatures, distortion float64) Features {
	return Features{DatasetFeatures: df, Distortion: distortion}
}
