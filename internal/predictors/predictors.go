// Package predictors implements the paper's five statistical
// compressibility predictors over blocked 2D buffers (§IV-A):
//
//   - Spatial Diversity (SD): spatially-weighted entropy combining
//     intra-block variability (block standard deviation) and inter-block
//     variability (location-weighted value distances).
//   - Spatial Correlation (SC): intra-block-weighted average of
//     location-weighted absolute Pearson correlations between blocks.
//   - Coding Gain (CG): geometric-mean ratio of the block second-moment
//     matrix diagonal to its eigenvalue spectrum — the KLT transform-coding
//     gain of Goyal's rate-distortion analysis.
//   - Spatial Smoothness (CovSVD-trunc): percentage of singular values of
//     the block covariance needed to reach 99% of total variance.
//   - Generic Distortion (D̂): the error-bound-specific rate-distortion
//     estimate log2 D̂ = 2H − 2H^q − log2 12 (see ComputeEB for the two
//     documented deviations from the paper's printed formula).
//
// The first four are dataset-specific but error-bound agnostic
// ("dset_predictors" in Algorithm 2) and are computed in a single fused
// pass; D̂ depends on the error bound ("eb_predictors"). Following §IV-C,
// the pairwise pass is driven off rows of the Gram matrix G = V·Vᵀ
// produced by the cache-blocked kernels in internal/linalg, with panels
// striped across workers; every floating-point reduction combines
// per-index terms in fixed index order, so results are bit-identical for
// every worker count (the earlier compare-and-swap accumulators made the
// SD/SC reduction order follow goroutine scheduling). Per-call working
// memory comes from a sync.Pool — see scratch.go and DESIGN.md
// "Performance".
package predictors

import (
	"fmt"
	"math"
	"time"

	"github.com/crestlab/crest/internal/crerr"
	"github.com/crestlab/crest/internal/grid"
	"github.com/crestlab/crest/internal/linalg"
	"github.com/crestlab/crest/internal/obs"
	"github.com/crestlab/crest/internal/parallel"
	"github.com/crestlab/crest/internal/stats"
)

// Per-predictor latency histograms, recorded into the process-wide
// registry on every successful computation. The four dataset predictors
// share fused passes (§IV-C), so shared cost is split by a fixed,
// documented attribution: the block-vectorization setup is divided
// equally across all four; the pairwise pass and its reduction are split
// between SD and SC; the covariance accumulation and eigendecomposition
// are split between CodingGain and CovSVDTrunc, each of which then adds
// its own (cheap) finishing stage. See DESIGN.md "Observability".
var (
	obsSD   = obs.Default().Histogram("predictor_sd_seconds", nil)
	obsSC   = obs.Default().Histogram("predictor_sc_seconds", nil)
	obsCG   = obs.Default().Histogram("predictor_coding_gain_seconds", nil)
	obsSVD  = obs.Default().Histogram("predictor_cov_svd_seconds", nil)
	obsDist = obs.Default().Histogram("predictor_distortion_seconds", nil)
)

// NumFeatures is the number of covariates of the prediction model (§IV-B).
const NumFeatures = 5

// FeatureNames lists the feature vector components in order.
var FeatureNames = [NumFeatures]string{
	"SD", "SC", "CodingGain", "CovSVDTrunc", "Distortion",
}

// Config tunes the predictor computation.
type Config struct {
	// K is the block edge length (default 8).
	K int
	// Bins is the histogram resolution for entropy estimation
	// (default 64).
	Bins int
	// Workers bounds the parallelism (default: GOMAXPROCS).
	Workers int
}

func (c Config) withDefaults() Config {
	if c.K <= 0 {
		c.K = 8
	}
	if c.Bins <= 0 {
		c.Bins = 64
	}
	return c
}

// DatasetFeatures are the error-bound-agnostic predictors of one buffer.
type DatasetFeatures struct {
	SD          float64 // spatial diversity
	SC          float64 // spatial correlation
	CodingGain  float64 // log2 KLT coding gain
	CovSVDTrunc float64 // % singular values for 99% variance

	// SingularProfile is the relative decay of the singular values of the
	// block covariance (σ_i / Σσ), consumed by the field-similarity
	// analysis of §VI-E.
	SingularProfile []float64
}

// Features is the full 5-dimensional covariate vector for one buffer and
// one error bound.
type Features struct {
	DatasetFeatures
	// Distortion is log2 D̂, the generic distortion on the log scale.
	Distortion float64
}

// Vector returns the model covariates in FeatureNames order.
func (f Features) Vector() []float64 {
	return []float64{f.SD, f.SC, f.CodingGain, f.CovSVDTrunc, f.Distortion}
}

// fillBlockStats vectorizes the blocks into the pooled scratch after
// standardizing the buffer globally (zero mean, unit variance). The four
// error-bound-agnostic predictors are thereby scale-free descriptors of
// *spatial structure*: two fields with the same shape but different
// physical units get the same SD/SC/CG/CovSVD, which is what makes
// out-of-field model transfer (§VI-C) possible. The amplitude-versus-bound
// information the compressors react to enters through the error-bound-
// specific generic distortion, which is computed on the raw values.
func fillBlockStats(s *dsScratch, buf *grid.Buffer, t *grid.Blocking) {
	b := t.NumBlocks()
	s.vecs = t.VecAllInto(s.vecs, s.backing)
	gm, gsd := stats.MeanStd(buf.Data)
	if gsd == 0 {
		gsd = 1
	}
	for i := 0; i < b; i++ {
		vec := s.vecs[i]
		for j, v := range vec {
			vec[j] = (v - gm) / gsd
		}
		m, sd := stats.MeanStd(vec)
		s.mean[i], s.sd[i] = m, sd
		var n2 float64
		for _, v := range vec {
			n2 += v * v
		}
		s.norm2[i] = n2
		br, bc := t.BlockPos(i)
		s.posR[i], s.posC[i] = float64(br), float64(bc)
	}
}

// reduceRow folds row i of the Gram matrix into the pairwise-pass outputs
// wInter[i] and scBlock[i]. row[j] must be ⟨v[i], v[j]⟩ for every j. The
// fold runs j = 0 → B−1 with serial accumulators, the exact order of the
// pre-Gram per-pair loop, so results are bit-identical to it; rows are
// independent, so callers may stripe them across workers freely.
func (s *dsScratch) reduceRow(i int, row []float64) {
	b := len(s.vecs)
	ri, ci := s.posR[i], s.posC[i]
	n2i, mi, sdi := s.norm2[i], s.mean[i], s.sd[i]
	var sumDs, sumDsDe, sumDsV float64
	for j := 0; j < b; j++ {
		if j == i {
			continue
		}
		dot := row[j]
		ds := math.Abs(ri-s.posR[j]) + math.Abs(ci-s.posC[j])
		de2 := n2i + s.norm2[j] - 2*dot
		if de2 < 0 {
			de2 = 0
		}
		de := math.Sqrt(de2)
		var rho float64
		if sdi > 0 && s.sd[j] > 0 {
			var cov float64
			if s.invK2 != 0 {
				// k² is a power of two, so multiplying by the exact
				// reciprocal rounds identically to dividing by k².
				cov = dot*s.invK2 - mi*s.mean[j]
			} else {
				cov = dot/s.fk2 - mi*s.mean[j]
			}
			rho = cov / (sdi * s.sd[j])
			if rho > 1 {
				rho = 1
			} else if rho < -1 {
				rho = -1
			}
		}
		sumDs += ds
		sumDsDe += ds * de
		sumDsV += ds * math.Abs(rho)
	}
	if sumDs > 0 {
		s.wInter[i] = sumDsDe / sumDs
		s.scBlock[i] = sumDsV / sumDs
	} else {
		// The scratch is pooled; stale values must not leak through.
		s.wInter[i], s.scBlock[i] = 0, 0
	}
}

// pairwisePass fills s.wInter and s.scBlock from Gram rows. When the full
// B×B Gram matrix fits the pool budget it is materialized once — computing
// only the lower triangle and mirroring, which halves the dot-product work
// and is bit-safe because IEEE multiplication commutes. Past the budget the
// pass streams row panels instead, recomputing each dot once per side.
func (s *dsScratch) pairwisePass(b, workers int) {
	if b*b*8 <= maxGramBytes {
		s.gram = growF(s.gram, b*b)
		nPanels := (b + symPanelRows - 1) / symPanelRows
		parallel.ForEachDynamic(nPanels, workers, func(p int) {
			lo := p * symPanelRows
			hi := min(lo+symPanelRows, b)
			linalg.GramBlock(s.vecs, lo, hi, 0, hi, s.gram[lo*b:], b)
		})
		linalg.MirrorLowerUpper(s.gram, b)
		parallel.ForEach(b, workers, func(i int) {
			s.reduceRow(i, s.gram[i*b:(i+1)*b])
		})
		return
	}
	nPanels := (b + streamPanelRows - 1) / streamPanelRows
	parallel.ForEachDynamic(nPanels, workers, func(p int) {
		lo := p * streamPanelRows
		hi := min(lo+streamPanelRows, b)
		panel := getPanel((hi - lo) * b)
		linalg.GramPanel(s.vecs, lo, hi, panel)
		for i := lo; i < hi; i++ {
			s.reduceRow(i, panel[(i-lo)*b:(i-lo+1)*b])
		}
		putPanel(panel)
	})
}

// ComputeDataset evaluates the four error-bound-agnostic predictors in one
// fused pass over block pairs (§IV-C). Results are bit-identical across
// worker counts and across calls: every reduction runs in fixed index
// order (see reduceRow, parallel.SumOrderedInto, linalg.SecondMomentLower).
func ComputeDataset(buf *grid.Buffer, cfg Config) (DatasetFeatures, error) {
	cfg = cfg.withDefaults()
	if err := buf.Validate(grid.DefaultValidation); err != nil {
		return DatasetFeatures{}, fmt.Errorf("predictors: %w", err)
	}
	tSetup := time.Now()
	t, err := grid.NewBlocking(buf, cfg.K)
	if err != nil {
		return DatasetFeatures{}, fmt.Errorf("predictors: %w", err)
	}
	b := t.NumBlocks()
	k2 := cfg.K * cfg.K
	s := getScratch(b, k2)
	defer putScratch(s)
	fillBlockStats(s, buf, t)
	s.fk2 = float64(k2)
	s.invK2 = 0
	if k2&(k2-1) == 0 {
		s.invK2 = 1 / s.fk2
	}
	setup := time.Since(tSetup).Seconds()
	return finishDataset(s, b, k2, cfg.Workers, setup), nil
}

// finishDataset evaluates the four dataset predictors from a scratch
// whose block matrix V is already vectorized and standardized (s.vecs,
// s.mean, s.sd, s.norm2, s.posR/posC and the reduction constants are
// filled). It is the shared back half of the in-memory and streaming
// paths: both feed the identical scratch state through the identical
// fixed-order kernels, which is what makes the streaming result
// bit-identical to ComputeDataset by construction rather than by
// tolerance. setup is the vectorization cost attributed across the four
// predictors' histograms.
func finishDataset(s *dsScratch, b, k2, workers int, setup float64) DatasetFeatures {
	// Pairwise pass: per-block inter weights and spatial correlations,
	// driven off Gram rows. Rows are independent, so panels are striped
	// across workers with no shared mutable state.
	tPair := time.Now()
	s.pairwisePass(b, workers)

	// Spatial Diversity: SD = −Σ_b w^intra_b w^inter_b p_b log2 p_b with
	// p_b = 1/B, and Spatial Correlation: SC = Σ SC_b w^intra / Σ w^intra.
	// Each sum combines per-block terms in index order, so the totals are
	// independent of the worker count.
	logB := math.Log2(float64(b))
	sd := parallel.SumOrderedInto(s.terms, workers, func(i int) float64 {
		return s.sd[i] * s.wInter[i] * logB / float64(b)
	})
	scNum := parallel.SumOrderedInto(s.terms, workers, func(i int) float64 {
		return s.scBlock[i] * s.sd[i]
	})
	scDen := parallel.SumOrderedInto(s.terms, workers, func(i int) float64 {
		return s.sd[i]
	})
	sc := 0.0
	if scDen > 0 {
		sc = scNum / scDen
	}
	pair := time.Since(tPair).Seconds()

	// Block second-moment matrix Σ = (1/B) Σ_b X^b (X^b)ᵀ. The serial
	// lower-triangle accumulation reproduces the old mutex-guarded order
	// exactly (see linalg.SecondMomentLower); it is a vanishing share of
	// the pass next to the O(B²k²) pairwise work.
	tCov := time.Now()
	linalg.SecondMomentLower(s.vecs, 1/float64(b), s.lower)
	sigma := &linalg.Matrix{Rows: k2, Cols: k2, Data: s.sigma}
	idx := 0
	for i := 0; i < k2; i++ {
		for j := 0; j <= i; j++ {
			v := s.lower[idx]
			s.sigma[i*k2+j] = v
			s.sigma[j*k2+i] = v
			idx++
		}
	}
	eig := linalg.SymEigenValues(sigma)
	covEig := time.Since(tCov).Seconds()

	tCG := time.Now()
	cg := codingGain(sigma, eig)
	cgOwn := time.Since(tCG).Seconds()
	tTrunc := time.Now()
	trunc, profile := covSVDTrunc(eig)
	truncOwn := time.Since(tTrunc).Seconds()

	// Record per-predictor cost under the documented fused-pass
	// attribution (see the histogram declarations above).
	share := setup / 4
	obsSD.Observe(share + pair/2)
	obsSC.Observe(share + pair/2)
	obsCG.Observe(share + covEig/2 + cgOwn)
	obsSVD.Observe(share + covEig/2 + truncOwn)

	return DatasetFeatures{
		SD:              sd,
		SC:              sc,
		CodingGain:      cg,
		CovSVDTrunc:     trunc,
		SingularProfile: profile,
	}
}

// codingGain returns the log2 transform-coding gain
// log2[(Π Σ_ii)^{1/k²} / (Π λ_i)^{1/k²}] of the block second-moment
// matrix. The log form keeps the feature on a stable scale; the paper's
// ratio is recovered as 2^CG.
func codingGain(sigma *linalg.Matrix, eig []float64) float64 {
	n := sigma.Rows
	// Eigenvalues at round-off level are numerical noise whose logs would
	// dominate the geometric mean; floor the spectrum relative to its
	// largest value (and to the diagonal scale) before taking logs.
	var scale float64
	for i := 0; i < n; i++ {
		if d := sigma.At(i, i); d > scale {
			scale = d
		}
	}
	if len(eig) > 0 && eig[0] > scale {
		scale = eig[0]
	}
	floor := math.Max(1e-300, 1e-12*scale)
	var logDiag, logEig float64
	for i := 0; i < n; i++ {
		logDiag += math.Log2(math.Max(sigma.At(i, i), floor))
		logEig += math.Log2(math.Max(eig[i], floor))
	}
	return (logDiag - logEig) / float64(n)
}

// covSVDTrunc returns the percentage of singular values needed to reach
// 99% of the spectrum mass, plus the normalized decay profile.
func covSVDTrunc(eig []float64) (float64, []float64) {
	n := len(eig)
	var total float64
	profile := make([]float64, n)
	for i, v := range eig {
		if v < 0 {
			v = 0
		}
		profile[i] = v
		total += v
	}
	if total == 0 {
		return 100.0 / float64(n), profile // degenerate: rank ≤ 1 behavior
	}
	for i := range profile {
		profile[i] /= total
	}
	var cum float64
	m := n
	for i := 0; i < n; i++ {
		cum += profile[i]
		if cum >= 0.99 {
			m = i + 1
			break
		}
	}
	return 100 * float64(m) / float64(n), profile
}

// ComputeEB evaluates the error-bound-specific generic distortion of
// §IV-A on the log2 scale: log2 D̂ = 2H − 2H^q − log2 12, where H is the
// histogram entropy estimate of the data distribution and H^q the entropy
// of the ε-quantized values α(x, ε) = ⌊x/ε⌋·ε.
//
// Two deliberate deviations from the paper's printed formula, both
// documented in DESIGN.md: (1) the entropies are estimated over the whole
// buffer rather than per k²-sample block, because a k²-sample empirical
// entropy saturates at log2 k² bits and erases the error-bound signal at
// tight bounds; (2) the rate term is the per-sample quantized entropy (the
// classical Goyal form D = (1/12)·2^{2h}·2^{−2R}) rather than H/k², which
// would divide a per-sample quantity by k² a second time.
func ComputeEB(buf *grid.Buffer, eps float64, cfg Config) (float64, error) {
	cfg = cfg.withDefaults()
	if eps <= 0 || math.IsNaN(eps) || math.IsInf(eps, 0) {
		return 0, fmt.Errorf("predictors: %w: error bound must be positive and finite, got %g",
			crerr.ErrInvalidBuffer, eps)
	}
	if err := buf.Validate(grid.DefaultValidation); err != nil {
		return 0, fmt.Errorf("predictors: %w", err)
	}
	bins := cfg.Bins
	if bins < 256 {
		bins = 1024 // buffer-level estimation supports a finer histogram
	}
	t0 := time.Now()
	h := stats.HistogramEntropy(buf.Data, bins)
	hq := stats.QuantizedEntropy(buf.Data, eps)
	obsDist.Observe(time.Since(t0).Seconds())
	return 2*h - 2*hq - math.Log2(12), nil
}

// Compute evaluates the full 5-feature covariate vector.
func Compute(buf *grid.Buffer, eps float64, cfg Config) (Features, error) {
	df, err := ComputeDataset(buf, cfg)
	if err != nil {
		return Features{}, err
	}
	d, err := ComputeEB(buf, eps, cfg)
	if err != nil {
		return Features{}, err
	}
	return Features{DatasetFeatures: df, Distortion: d}, nil
}

// Combine merges previously computed dataset features with a fresh
// error-bound-specific distortion, the split Algorithm 2 uses to avoid
// recomputation across error bounds.
func Combine(df DatasetFeatures, distortion float64) Features {
	return Features{DatasetFeatures: df, Distortion: distortion}
}
