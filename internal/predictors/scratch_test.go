package predictors

import (
	"sync"
	"testing"

	"github.com/crestlab/crest/internal/grid"
	"github.com/crestlab/crest/internal/testutil"
)

// TestScratchShapeChurnHammer hammers the scratch pools with concurrent
// calls of churning shapes and block sizes — the PR 6 arm() bug class:
// a scratch checked out after a differently shaped call must be fully
// re-sliced for the new (B, k²), never trusted. Each goroutine checks
// its results bitwise against a per-shape reference computed before the
// churn, so any stale-geometry reuse (wrong vecs stride, stale moment
// tail, leaked pairwise output) shows up as a bit difference, and the
// race detector sees any cross-checkout sharing. Run under -race in CI.
func TestScratchShapeChurnHammer(t *testing.T) {
	type shape struct {
		rows, cols, k int
	}
	// Deliberately interleaved sizes: growing, shrinking, k-churn, and a
	// ragged shape whose blocking crops both axes.
	shapes := []shape{
		{96, 96, 8},
		{32, 32, 4},
		{90, 101, 8},
		{64, 48, 16},
		{40, 56, 8},
	}
	bufs := make([]*grid.Buffer, len(shapes))
	refs := make([]DatasetFeatures, len(shapes))
	for i, sh := range shapes {
		bufs[i] = mixedMagnitudeBuffer(sh.rows, sh.cols, int64(1000+i))
		want, err := ComputeDataset(bufs[i], Config{K: sh.k, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = want
	}

	const goroutines = 8
	const iters = 30
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				i := (g + it) % len(shapes)
				got, err := ComputeDataset(bufs[i], Config{K: shapes[i].k, Workers: 1 + it%3})
				if err != nil {
					errc <- err
					return
				}
				checkBitIdentical(t, refs[i], got, g, it)
				// Interleave float32 calls so both pool instantiations
				// churn against each other.
				if it%3 == 0 {
					n := grid.NewBuffer32(bufs[i].Rows, bufs[i].Cols)
					for j, v := range bufs[i].Data {
						n.Data[j] = float32(v)
					}
					if _, err := ComputeDataset32(n, Config{K: shapes[i].k, Workers: 1}); err != nil {
						errc <- err
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// TestComputeDatasetZeroAlloc pins the zero-steady-state-allocation
// contract of the pooled predictor path: once the pools are warm, a
// serial ComputeDataset with the profile output suppressed allocates
// nothing — no closures, no scratch, no result slices. This is the
// per-request feature cost inside a saturated batch worker.
func TestComputeDatasetZeroAlloc(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("sync.Pool drops items randomly under -race; alloc counts are nondeterministic")
	}
	buf := mixedMagnitudeBuffer(128, 128, 3)
	cfg := Config{K: 8, Workers: 1, SkipProfile: true}
	if _, err := ComputeDataset(buf, cfg); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := ComputeDataset(buf, cfg); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm ComputeDataset (SkipProfile, workers=1): %.1f allocs/op, want 0", allocs)
	}

	narrow := grid.NewBuffer32(buf.Rows, buf.Cols)
	for i, v := range buf.Data {
		narrow.Data[i] = float32(v)
	}
	if _, err := ComputeDataset32(narrow, cfg); err != nil {
		t.Fatal(err)
	}
	allocs = testing.AllocsPerRun(50, func() {
		if _, err := ComputeDataset32(narrow, cfg); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm ComputeDataset32 (SkipProfile, workers=1): %.1f allocs/op, want 0", allocs)
	}
}
