package predictors

import (
	"sync"
	"unsafe"

	"github.com/crestlab/crest/internal/linalg"
)

// scratch.go pools the per-call working memory of ComputeDataset so the
// hot path stops allocating per buffer: the vectorized block matrix and
// its slice headers, the per-block moment arrays, the pairwise-pass
// outputs, the eigensolver working set, and (when it fits the budget)
// the full B×B Gram matrix. The pool is safe for concurrent
// ComputeDataset calls — each call checks out one scratch; the streaming
// Gram path additionally checks out per-worker panel buffers from a
// second pool. Everything element-typed is generic over float32/float64
// with one pool per instantiation; the float64 stat arrays (moments,
// reduction terms, Σ) are shared by both instantiations because every
// reduction accumulates in float64 regardless of the stored element
// type (see internal/linalg's precision contract).
//
// Shape-reuse contract (the PR 6 arm() bug class): getScratch resizes
// every array for the requested (b, k²) and re-carves vecs from the
// backing, so a scratch checked out after a differently shaped call
// carries no stale geometry. The shape-churn hammer test pins this
// under -race.

const (
	// maxGramBytes bounds the pooled full Gram matrix. Up to this size
	// the pairwise pass materializes the whole symmetric G = V·Vᵀ
	// (halving the dot-product work); past it, the pass streams
	// L1-resident row panels instead. 192 MiB admits B = 4096 float64
	// blocks — a 512×512 buffer at the default k = 8 — and twice as
	// many blocks at float32.
	maxGramBytes = 192 << 20

	// symPanelRows is the panel height of the symmetric full-Gram fill:
	// the unit of parallel work handed to one worker. A multiple of the
	// kernel's 4-row register block.
	symPanelRows = 16

	// streamPanelRows is the panel height of the streaming fallback
	// pass. At B = 8192 a panel is 8192·32·8 = 2 MiB of Gram rows,
	// sized for the L2 cache.
	streamPanelRows = 32
)

// dsScratch is the reusable working set of one ComputeDataset call.
type dsScratch[F linalg.Float] struct {
	// Block vectorization (the standardized B×k² matrix V), its
	// k²×B transpose (the SIMD Gram kernel's layout), and the full
	// Gram matrix (budget-gated; left nil on the streaming path).
	vecs    [][]F
	backing []F
	vt      []F
	gram    []F

	// Per-block moments (always float64 — the reduction precision).
	mean  []float64
	sd    []float64 // w^intra
	norm2 []float64 // Σ x²

	// Block positions as floats, so the pairwise pass computes the
	// Manhattan distance without per-pair div/mod.
	posR, posC []float64

	// float32 mirrors of the per-block stats, filled only by the
	// float32 instantiation for the vectorized pairwise reduce.
	// invSd32[i] holds 1/sd[i] with an exact zero where sd[i] == 0,
	// which encodes the "both sds positive" correlation gate (see
	// linalg.PairReduceF32).
	posR32, posC32  []float32
	norm232, mean32 []float32
	invSd32         []float32

	// Pairwise-pass outputs and the ordered-reduction term buffer.
	wInter  []float64 // Σ Ds·De / Σ Ds
	scBlock []float64 // Σ Ds·|ρ| / Σ Ds
	terms   []float64

	// Second-moment accumulation target, the k²×k² matrix backing, and
	// the pooled eigensolver working set.
	lower   []float64
	sigma   []float64
	eigVals []float64
	eigWork []float64

	// Reduction constants of the current call (see reduceRow).
	fk2   float64
	invK2 float64
}

var (
	dsPool64 = sync.Pool{New: func() any { return new(dsScratch[float64]) }}
	dsPool32 = sync.Pool{New: func() any { return new(dsScratch[float32]) }}
)

// grow returns s resized to n, reusing capacity when possible.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// getScratch checks a scratch out of the pool sized for b blocks of k²
// elements, with vecs carved from the backing at stride k² (the layout
// the SIMD kernels detect).
func getScratch[F linalg.Float](b, k2 int) *dsScratch[F] {
	var s *dsScratch[F]
	switch p := any(&s).(type) {
	case **dsScratch[float64]:
		*p = dsPool64.Get().(*dsScratch[float64])
	case **dsScratch[float32]:
		*p = dsPool32.Get().(*dsScratch[float32])
	}
	s.backing = grow(s.backing, b*k2)
	if cap(s.vecs) < b {
		s.vecs = make([][]F, b)
	}
	s.vecs = s.vecs[:b]
	for i := 0; i < b; i++ {
		s.vecs[i] = s.backing[i*k2 : (i+1)*k2]
	}
	s.mean = grow(s.mean, b)
	s.sd = grow(s.sd, b)
	s.norm2 = grow(s.norm2, b)
	s.posR = grow(s.posR, b)
	s.posC = grow(s.posC, b)
	s.wInter = grow(s.wInter, b)
	s.scBlock = grow(s.scBlock, b)
	s.terms = grow(s.terms, b)
	s.lower = grow(s.lower, k2*(k2+1)/2)
	s.sigma = grow(s.sigma, k2*k2)
	s.eigVals = grow(s.eigVals, k2)
	s.eigWork = grow(s.eigWork, k2*k2)
	if isF32[F]() {
		s.posR32 = grow(s.posR32, b)
		s.posC32 = grow(s.posC32, b)
		s.norm232 = grow(s.norm232, b)
		s.mean32 = grow(s.mean32, b)
		s.invSd32 = grow(s.invSd32, b)
	}
	return s
}

func putScratch[F linalg.Float](s *dsScratch[F]) {
	switch t := any(s).(type) {
	case *dsScratch[float64]:
		dsPool64.Put(t)
	case *dsScratch[float32]:
		dsPool32.Put(t)
	}
}

// isF32 reports whether the instantiation stores float32 elements.
func isF32[F linalg.Float]() bool {
	var z F
	return unsafe.Sizeof(z) == 4
}

// panelPool recycles streaming-pass Gram panels; each concurrent worker
// of the streaming path holds at most one.
var (
	panelPool64 sync.Pool
	panelPool32 sync.Pool
)

func getPanel[F linalg.Float](n int) []F {
	pool := &panelPool64
	if isF32[F]() {
		pool = &panelPool32
	}
	if p, ok := pool.Get().(*[]F); ok && cap(*p) >= n {
		return (*p)[:n]
	}
	return make([]F, n)
}

func putPanel[F linalg.Float](p []F) {
	pool := &panelPool64
	if isF32[F]() {
		pool = &panelPool32
	}
	p = p[:cap(p)]
	pool.Put(&p)
}
