package predictors

import "sync"

// scratch.go pools the per-call working memory of ComputeDataset so the
// hot path stops allocating per buffer: the vectorized block matrix and
// its slice headers, the per-block moment arrays, the pairwise-pass
// outputs, and (when it fits the budget) the full B×B Gram matrix. The
// pool is safe for concurrent ComputeDataset calls — each call checks out
// one scratch; the streaming Gram path additionally checks out per-worker
// panel buffers from a second pool.

const (
	// maxGramBytes bounds the pooled full Gram matrix. Up to this size
	// the pairwise pass materializes the whole symmetric G = V·Vᵀ
	// (halving the dot-product work); past it, the pass streams
	// L1-resident row panels instead. 192 MiB admits B = 4096 blocks —
	// a 512×512 buffer at the default k = 8.
	maxGramBytes = 192 << 20

	// symPanelRows is the panel height of the symmetric full-Gram fill:
	// the unit of parallel work handed to one worker. A multiple of the
	// kernel's 4-row register block.
	symPanelRows = 16

	// streamPanelRows is the panel height of the streaming fallback
	// pass. At B = 8192 a panel is 8192·32·8 = 2 MiB of Gram rows,
	// sized for the L2 cache.
	streamPanelRows = 32
)

// dsScratch is the reusable working set of one ComputeDataset call.
type dsScratch struct {
	// Block vectorization (the standardized B×k² matrix V).
	vecs    [][]float64
	backing []float64

	// Per-block moments.
	mean  []float64
	sd    []float64 // w^intra
	norm2 []float64 // Σ x²

	// Block positions as floats, so the pairwise pass computes the
	// Manhattan distance without per-pair div/mod.
	posR, posC []float64

	// Pairwise-pass outputs and the ordered-reduction term buffer.
	wInter  []float64 // Σ Ds·De / Σ Ds
	scBlock []float64 // Σ Ds·|ρ| / Σ Ds
	terms   []float64

	// Second-moment accumulation target and the k²×k² matrix backing.
	lower []float64
	sigma []float64

	// Full Gram matrix (budget-gated; left nil on the streaming path).
	gram []float64

	// Reduction constants of the current call (see reduceRow).
	fk2   float64
	invK2 float64
}

var dsPool = sync.Pool{New: func() any { return new(dsScratch) }}

// growF returns s resized to n, reusing capacity when possible.
func growF(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// getScratch checks a scratch out of the pool sized for b blocks of k²
// elements.
func getScratch(b, k2 int) *dsScratch {
	s := dsPool.Get().(*dsScratch)
	s.backing = growF(s.backing, b*k2)
	if cap(s.vecs) < b {
		s.vecs = make([][]float64, b)
	}
	s.vecs = s.vecs[:b]
	s.mean = growF(s.mean, b)
	s.sd = growF(s.sd, b)
	s.norm2 = growF(s.norm2, b)
	s.posR = growF(s.posR, b)
	s.posC = growF(s.posC, b)
	s.wInter = growF(s.wInter, b)
	s.scBlock = growF(s.scBlock, b)
	s.terms = growF(s.terms, b)
	s.lower = growF(s.lower, k2*(k2+1)/2)
	s.sigma = growF(s.sigma, k2*k2)
	return s
}

func putScratch(s *dsScratch) {
	dsPool.Put(s)
}

// panelPool recycles streaming-pass Gram panels; each concurrent worker
// of the streaming path holds at most one.
var panelPool sync.Pool

func getPanel(n int) []float64 {
	if p, ok := panelPool.Get().(*[]float64); ok && cap(*p) >= n {
		return (*p)[:n]
	}
	return make([]float64, n)
}

func putPanel(p []float64) {
	p = p[:cap(p)]
	panelPool.Put(&p)
}
