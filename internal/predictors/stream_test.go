package predictors

import (
	"bytes"
	"errors"
	"io"
	"math"
	"math/rand"
	"testing"

	"github.com/crestlab/crest/internal/crerr"
	"github.com/crestlab/crest/internal/grid"
)

// mixedMagnitudeBuffer builds a buffer whose values span ~24 binades so
// any reassociation or reordering of a floating-point reduction shows up
// in the low bits.
func mixedMagnitudeBuffer(rows, cols int, seed int64) *grid.Buffer {
	rng := rand.New(rand.NewSource(seed))
	buf := grid.NewBuffer(rows, cols)
	for i := range buf.Data {
		buf.Data[i] = rng.NormFloat64() * float64(int(1)<<uint(rng.Intn(24)))
	}
	return buf
}

func encodeStream(t *testing.T, buf *grid.Buffer, dt grid.DType, chunkRows int) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := grid.EncodeBuffer(&b, buf, dt, chunkRows); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

func streamOnce(t *testing.T, raw []byte, eps float64, cfg Config) SliceFeatures {
	t.Helper()
	cr, err := grid.NewChunkReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	out, err := ComputeStream(cr, []float64{eps}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("got %d slices, want 1", len(out))
	}
	return out[0]
}

// TestStreamingDifferentialBitIdentity is the streaming twin of
// TestReductionDeterminismAcrossWorkers: for float64 input, the
// chunk-fed path must return bit-identical features to the in-memory
// ComputeDataset/ComputeEB for every chunk size and worker count,
// including shapes the blocking crops. Run under -race in CI.
func TestStreamingDifferentialBitIdentity(t *testing.T) {
	shapes := []struct{ rows, cols int }{
		{96, 96},  // exactly tileable
		{90, 101}, // cropped on both axes
	}
	const eps = 1e-3
	for _, shape := range shapes {
		buf := mixedMagnitudeBuffer(shape.rows, shape.cols, int64(shape.rows*1000+shape.cols))
		for _, workers := range []int{1, 8} {
			cfg := Config{K: 8, Workers: workers}
			want, err := ComputeDataset(buf, cfg)
			if err != nil {
				t.Fatal(err)
			}
			wantD, err := ComputeEB(buf, eps, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, chunkRows := range []int{1, 32, 7, shape.rows} {
				raw := encodeStream(t, buf, grid.DTypeF64, chunkRows)
				got := streamOnce(t, raw, eps, cfg)
				checkBitIdentical(t, want, got.Dataset, workers, chunkRows)
				if math.Float64bits(got.Distortions[0]) != math.Float64bits(wantD) {
					t.Errorf("shape %dx%d chunk=%d workers=%d: distortion %x (%.17g), want %x (%.17g)",
						shape.rows, shape.cols, chunkRows, workers,
						math.Float64bits(got.Distortions[0]), got.Distortions[0],
						math.Float64bits(wantD), wantD)
				}
			}
		}
	}
}

// TestStreamingFloat32NativeContract pins the float32 accuracy contract
// after the native-f32 pipeline: a dtype-1 stream is processed at
// float32 end to end, and its features are bit-identical to the
// in-memory float32 entry points (Compute32/ComputeDataset32) over the
// narrowed buffer — both run the identical generic core. The distortion
// additionally matches ComputeEB over the widened buffer bit-for-bit,
// because the entropy estimators widen exactly and bin in float64.
func TestStreamingFloat32NativeContract(t *testing.T) {
	buf := mixedMagnitudeBuffer(64, 72, 7)
	raw := encodeStream(t, buf, grid.DTypeF32, 5)

	narrow := grid.NewBuffer32(buf.Rows, buf.Cols)
	for i, v := range buf.Data {
		narrow.Data[i] = float32(v)
	}
	cfg := Config{K: 8, Workers: 4}
	want, err := Compute32(narrow, 1e-2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := streamOnce(t, raw, 1e-2, cfg)
	checkBitIdentical(t, want.DatasetFeatures, got.Dataset, 4, 5)
	if math.Float64bits(got.Distortions[0]) != math.Float64bits(want.Distortion) {
		t.Errorf("float32 distortion differs bitwise: %.17g vs %.17g", got.Distortions[0], want.Distortion)
	}

	// The widened buffer's float64 distortion must agree bit-for-bit:
	// entropy is a function of the value multiset, widened exactly.
	widened := narrow.Widen()
	wantD, err := ComputeEB(widened, 1e-2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(got.Distortions[0]) != math.Float64bits(wantD) {
		t.Errorf("widened distortion differs bitwise: %.17g vs %.17g", got.Distortions[0], wantD)
	}
}

// TestStreamingMultiSliceMatchesPerSlice checks a multi-slice (temporal)
// stream yields, slice by slice, exactly the in-memory features of each
// step — and that one featurizer's reuse across slices leaks no state.
func TestStreamingMultiSliceMatchesPerSlice(t *testing.T) {
	const steps = 5
	bufs := make([]*grid.Buffer, steps)
	for i := range bufs {
		bufs[i] = mixedMagnitudeBuffer(48, 56, int64(100+i))
	}
	var b bytes.Buffer
	if err := grid.EncodeBuffers(&b, bufs, grid.DTypeF64, 11); err != nil {
		t.Fatal(err)
	}
	cr, err := grid.NewChunkReader(bytes.NewReader(b.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{K: 8, Workers: 3}
	got, err := ComputeStream(cr, []float64{1e-3}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != steps {
		t.Fatalf("got %d slices, want %d", len(got), steps)
	}
	for i, sf := range got {
		if sf.Step != i {
			t.Errorf("slice %d reported step %d", i, sf.Step)
		}
		want, err := ComputeDataset(bufs[i], cfg)
		if err != nil {
			t.Fatal(err)
		}
		checkBitIdentical(t, want, sf.Dataset, cfg.Workers, i)
		wantD, err := ComputeEB(bufs[i], 1e-3, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(sf.Distortions[0]) != math.Float64bits(wantD) {
			t.Errorf("slice %d: distortion differs bitwise", i)
		}
	}
}

// ---------------------------------------------------------------------------
// Chaos coverage: reader faults must surface as typed errors, never as
// partial or NaN features.

// faultAfterReader yields n bytes of src then fails with cause.
type faultAfterReader struct {
	src   io.Reader
	left  int
	cause error
}

func (r *faultAfterReader) Read(p []byte) (int, error) {
	if r.left <= 0 {
		return 0, r.cause
	}
	if len(p) > r.left {
		p = p[:r.left]
	}
	n, err := r.src.Read(p)
	r.left -= n
	return n, err
}

func TestStreamingMidStreamReadError(t *testing.T) {
	buf := mixedMagnitudeBuffer(64, 64, 3)
	raw := encodeStream(t, buf, grid.DTypeF64, 8)
	cause := errors.New("disk gone")
	for _, cut := range []int{len(raw) / 3, len(raw) / 2, len(raw) - 1} {
		cr, err := grid.NewChunkReader(&faultAfterReader{src: bytes.NewReader(raw), left: cut, cause: cause})
		if err != nil {
			t.Fatalf("cut=%d: header should decode: %v", cut, err)
		}
		out, err := ComputeStream(cr, []float64{1e-3}, Config{K: 8})
		if err == nil {
			t.Fatalf("cut=%d: expected error, got %d slices", cut, len(out))
		}
		if !errors.Is(err, crerr.ErrStreamCorrupt) {
			t.Errorf("cut=%d: error not typed ErrStreamCorrupt: %v", cut, err)
		}
		if !errors.Is(err, cause) {
			t.Errorf("cut=%d: cause not preserved: %v", cut, err)
		}
		if out != nil {
			t.Errorf("cut=%d: partial features returned alongside error", cut)
		}
	}
}

func TestStreamingTruncatedTrailingChunk(t *testing.T) {
	buf := mixedMagnitudeBuffer(40, 40, 9)
	raw := encodeStream(t, buf, grid.DTypeF64, 13)
	for _, keep := range []int{len(raw) - 1, len(raw) - 40*8, len(raw) - 40*8*5 - 2} {
		cr, err := grid.NewChunkReader(bytes.NewReader(raw[:keep]))
		if err != nil {
			t.Fatalf("keep=%d: header should decode: %v", keep, err)
		}
		out, err := ComputeStream(cr, nil, Config{K: 8})
		if err == nil {
			t.Fatalf("keep=%d: expected truncation error, got %d slices", keep, len(out))
		}
		if !errors.Is(err, crerr.ErrStreamCorrupt) {
			t.Errorf("keep=%d: error not typed ErrStreamCorrupt: %v", keep, err)
		}
		if out != nil {
			t.Errorf("keep=%d: partial features returned alongside error", keep)
		}
	}
}

func TestStreamingNonFiniteRejected(t *testing.T) {
	buf := mixedMagnitudeBuffer(32, 32, 5)
	buf.Data[700] = math.NaN()
	raw := encodeStream(t, buf, grid.DTypeF64, 4)
	cr, err := grid.NewChunkReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	out, err := ComputeStream(cr, []float64{1e-3}, Config{K: 8})
	if !errors.Is(err, crerr.ErrNonFiniteData) {
		t.Fatalf("want ErrNonFiniteData, got %v", err)
	}
	if out != nil {
		t.Error("features returned for poisoned stream")
	}
}

// TestStreamFeaturizerReuseIsClean pins that Reset carries no state
// between slices: featurizing A, then B, then A again returns A's exact
// bits both times.
func TestStreamFeaturizerReuseIsClean(t *testing.T) {
	a := mixedMagnitudeBuffer(48, 48, 1)
	bb := mixedMagnitudeBuffer(48, 48, 2)
	f, err := NewStreamFeaturizer(48, 48, Config{K: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	run := func(buf *grid.Buffer) DatasetFeatures {
		t.Helper()
		for r := 0; r < 48; r++ {
			if err := f.AddRow(buf.Data[r*48 : (r+1)*48]); err != nil {
				t.Fatal(err)
			}
		}
		df, _, err := f.Finish()
		if err != nil {
			t.Fatal(err)
		}
		f.Reset()
		return df
	}
	first := run(a)
	run(bb)
	again := run(a)
	checkBitIdentical(t, first, again, 0, 0)
}
