package predictors

import (
	"math"
	"math/rand"
	"testing"

	"github.com/crestlab/crest/internal/grid"
	"github.com/crestlab/crest/internal/linalg"
	"github.com/crestlab/crest/internal/stats"
)

// TestReductionDeterminismAcrossWorkers pins the deterministic-reduction
// contract: ComputeDataset must return bit-identical features for every
// worker count, on every call. The old compare-and-swap SD/SC accumulators
// summed in goroutine-scheduling order, so under `-race -count=20` this
// test flaked on any multi-core machine; the fixed-index-order reductions
// make it exact by construction. Values of wildly mixed magnitudes make
// any reassociation visible in the low bits.
func TestReductionDeterminismAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	buf := grid.NewBuffer(96, 96)
	for i := range buf.Data {
		buf.Data[i] = rng.NormFloat64() * float64(int(1)<<uint(rng.Intn(24)))
	}

	base, err := ComputeDataset(buf, Config{K: 8, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 2, 3, 8} {
		for iter := 0; iter < 4; iter++ {
			got, err := ComputeDataset(buf, Config{K: 8, Workers: w})
			if err != nil {
				t.Fatal(err)
			}
			checkBitIdentical(t, base, got, w, iter)
		}
	}
}

func checkBitIdentical(t *testing.T, want, got DatasetFeatures, workers, iter int) {
	t.Helper()
	fields := []struct {
		name       string
		want, have float64
	}{
		{"SD", want.SD, got.SD},
		{"SC", want.SC, got.SC},
		{"CodingGain", want.CodingGain, got.CodingGain},
		{"CovSVDTrunc", want.CovSVDTrunc, got.CovSVDTrunc},
	}
	for _, f := range fields {
		if math.Float64bits(f.want) != math.Float64bits(f.have) {
			t.Errorf("workers=%d iter=%d: %s = %x (%.17g), want %x (%.17g)",
				workers, iter, f.name,
				math.Float64bits(f.have), f.have,
				math.Float64bits(f.want), f.want)
		}
	}
	if len(want.SingularProfile) != len(got.SingularProfile) {
		t.Fatalf("workers=%d iter=%d: profile length %d, want %d",
			workers, iter, len(got.SingularProfile), len(want.SingularProfile))
	}
	for i := range want.SingularProfile {
		if math.Float64bits(want.SingularProfile[i]) != math.Float64bits(got.SingularProfile[i]) {
			t.Errorf("workers=%d iter=%d: SingularProfile[%d] differs bitwise",
				workers, iter, i)
		}
	}
}

// TestStreamingPathMatchesFullGram forces the streaming panel fallback by
// exercising it directly and checks it is bit-identical to the pooled
// full-Gram path on the same scratch contents.
func TestStreamingPathMatchesFullGram(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	buf := grid.NewBuffer(88, 104) // 11×13 = 143 blocks: ragged panels
	for i := range buf.Data {
		buf.Data[i] = rng.NormFloat64() * float64(int(1)<<uint(rng.Intn(20)))
	}
	tl, err := grid.MakeBlocking(buf, 8)
	if err != nil {
		t.Fatal(err)
	}
	b := tl.NumBlocks()
	k2 := 64
	gm, gsd := stats.MeanStd(buf.Data)

	full := getScratch[float64](b, k2)
	full.vecs = tl.VecAllInto(full.vecs, full.backing)
	fillBlockStats(full, gm, gsd, b, tl.Bc)
	full.fk2, full.invK2 = float64(k2), 1/float64(k2)
	full.pairwisePass(b, 4) // b²·8 ≪ budget → full-Gram path

	stream := getScratch[float64](b, k2)
	stream.vecs = tl.VecAllInto(stream.vecs, stream.backing)
	fillBlockStats(stream, gm, gsd, b, tl.Bc)
	stream.fk2, stream.invK2 = float64(k2), 1/float64(k2)
	nPanels := (b + streamPanelRows - 1) / streamPanelRows
	for p := 0; p < nPanels; p++ {
		lo := p * streamPanelRows
		hi := min(lo+streamPanelRows, b)
		panel := getPanel[float64]((hi - lo) * b)
		linalg.GramPanel(stream.vecs, lo, hi, panel)
		for i := lo; i < hi; i++ {
			stream.reduceRow(i, panel[(i-lo)*b:(i-lo+1)*b])
		}
		putPanel(panel)
	}

	for i := 0; i < b; i++ {
		if math.Float64bits(full.wInter[i]) != math.Float64bits(stream.wInter[i]) {
			t.Errorf("wInter[%d]: full %x, stream %x", i,
				math.Float64bits(full.wInter[i]), math.Float64bits(stream.wInter[i]))
		}
		if math.Float64bits(full.scBlock[i]) != math.Float64bits(stream.scBlock[i]) {
			t.Errorf("scBlock[%d]: full %x, stream %x", i,
				math.Float64bits(full.scBlock[i]), math.Float64bits(stream.scBlock[i]))
		}
	}
	putScratch(full)
	putScratch(stream)
}
