//go:build race

package testutil

// RaceEnabled reports whether the binary was built with the race
// detector. Allocation-count assertions must skip when it is set:
// sync.Pool deliberately drops puts and gets at random under the race
// detector to shake out lifetime bugs, so testing.AllocsPerRun over a
// pooled path is nondeterministic there.
const RaceEnabled = true
