package linalg

import "math"

// pairreduce.go is the float32 fast path of the predictors' pairwise
// SD/SC reduction. The float64 path keeps its scalar loop in
// internal/predictors (its per-pair division and square root are the
// bit-identity reference); the float32 path has no bitwise-vs-naive
// obligation, so it trades the division for a multiplication by a
// precomputed 1/sd and vectorizes eight pairs at a time on amd64.

// PairReduceF32 folds row i of the float32 Gram matrix into the three
// pairwise sums of the SD/SC predictors:
//
//	ds_j  = |posR[i]−posR[j]| + |posC[i]−posC[j]|   (Manhattan distance)
//	de_j  = sqrt(max(0, norm2[i]+norm2[j]−2·row[j])) (Euclidean distance)
//	rho_j = clamp(|(row[j]·invK2 − mean[i]·mean[j]) · invSd[i]·invSd[j]|, 0, 1)
//
// returning (Σ ds, Σ ds·de, Σ ds·rho) over all j including j == i, whose
// ds of zero makes it a no-op in every sum. invSd must hold 1/sd with
// exact zeros where sd == 0, which reproduces the f64 path's "both sds
// positive" gate: a zero-variance block contributes rho = 0.
//
// Determinism: the AVX2 kernel accumulates in a fixed lane structure
// with a fixed horizontal fold, and the scalar tail continues from those
// partials in index order; the scalar fallback is a plain forward loop.
// Either way the result is a deterministic function of the inputs for a
// given binary and CPU — worker count and chunking never affect it.
func PairReduceF32(row, posR, posC, norm2, mean, invSd []float32, i int, invK2 float32) (sumDs, sumDsDe, sumDsV float64) {
	c := pairConsts32{
		ri:     posR[i],
		ci:     posC[i],
		n2i:    norm2[i],
		mi:     mean[i],
		invSdI: invSd[i],
		invK2:  invK2,
	}
	j, sums := pairReduceVecF32(row, posR, posC, norm2, mean, invSd, c)
	sDs, sDsDe, sDsV := sums[0], sums[1], sums[2]
	for ; j < len(row); j++ {
		ds := abs32(c.ri-posR[j]) + abs32(c.ci-posC[j])
		dot := row[j]
		de2 := (c.n2i + norm2[j]) - 2*dot
		if de2 < 0 {
			de2 = 0
		}
		de := float32(math.Sqrt(float64(de2)))
		rho := (dot*invK2 - c.mi*mean[j]) * c.invSdI * invSd[j]
		rho = abs32(rho)
		if rho > 1 {
			rho = 1
		}
		sDs += ds
		sDsDe += ds * de
		sDsV += ds * rho
	}
	return float64(sDs), float64(sDsDe), float64(sDsV)
}

func abs32(x float32) float32 {
	if x < 0 {
		return -x
	}
	return x
}
