package linalg

// gram.go implements the cache-blocked Gram-matrix kernels behind the
// fused predictor pass (§IV-C): the pairwise SD/SC loop consumes rows of
// G = V·Vᵀ for the B×k² standardized block matrix V, and the block
// second-moment matrix Σ = (1/B)·VᵀV feeds the eigendecomposition.
//
// Determinism contract: every output element is accumulated as a single
// forward-order sum (index 0 → n−1) with one accumulator, exactly the
// order of the textbook scalar loop `for x { dot += a[x]*b[x] }`. Because
// IEEE-754 multiplication commutes exactly and the summation order is
// fixed, every element is bit-identical to the naive per-pair loop — and
// to its mirrored element, so symmetric reuse is bit-safe. Speed comes
// from cache blocking and instruction-level parallelism *across*
// independent output elements (register-blocked rows, and on amd64 SIMD
// lanes spanning adjacent output columns — see GramBlockT), never from
// splitting one element's accumulation chain.
//
// The float64 kernels honor that contract even in the vector path: the
// AVX2 kernel broadcasts a[i][x] against four adjacent columns of the
// transposed right-hand side and issues separate multiply and add
// instructions, so each lane performs the identical round(mul) →
// round(add) sequence of the scalar loop. The float32 kernels instead
// use FMA (one rounding per step); they remain deterministic — a fixed
// instruction sequence per element — but are only ULP-equivalent, not
// bit-equal, to the float32 scalar fallback. The f32-vs-f64 differential
// suite in internal/predictors bounds that divergence.

// gramPanelRows is the default panel height used by Gram: the number of
// left-hand rows processed per pass over V. At k² = 64 a panel is
// 4·64·8 = 2 KiB of left-hand vectors, comfortably L1-resident, while the
// 4-row register block gives four independent accumulation chains per
// column.
const gramPanelRows = 4

// GramPanel computes rows [lo, hi) of the Gram matrix G = V·Vᵀ over the
// row set v: out[(i−lo)·len(v) + j] = ⟨v[i], v[j]⟩ for lo ≤ i < hi and
// 0 ≤ j < len(v). All rows of v must share one length; out must hold at
// least (hi−lo)·len(v) elements. Each dot product is a single
// forward-order accumulation, so the result is bit-identical to the
// naive scalar loop regardless of how callers tile or parallelize the
// panels.
func GramPanel[F Float](v [][]F, lo, hi int, out []F) {
	GramBlock(v, lo, hi, 0, len(v), out, len(v))
}

// GramBlock computes the rectangular Gram block
// out[(i−lo)·stride + j] = ⟨v[i], v[j]⟩ for i in [lo, hi), j in [jlo, jhi)
// with the given output row stride. It is the register-blocked scalar
// kernel under GramPanel and GramInto, exported so callers can tile a
// symmetric fill themselves (e.g. parallelize panels of the lower
// triangle). Hot paths that can afford a transposed copy of v should
// prefer GramBlockT, which dispatches to the SIMD kernel when available.
func GramBlock[F Float](v [][]F, lo, hi, jlo, jhi int, out []F, stride int) {
	k, ok := checkGramBounds(v, lo, hi, jlo, jhi, out, stride)
	if !ok {
		return
	}
	gramBlockScalar(v, k, lo, hi, jlo, jhi, out, stride)
}

// checkGramBounds validates a Gram block request and returns the shared
// row length. ok=false flags an empty (but valid) block.
func checkGramBounds[F Float](v [][]F, lo, hi, jlo, jhi int, out []F, stride int) (k int, ok bool) {
	n := len(v)
	if lo < 0 || hi > n || jlo < 0 || jhi > n {
		panic("linalg: gram panel bounds out of range")
	}
	if hi <= lo || jhi <= jlo {
		return 0, false
	}
	k = len(v[lo])
	if len(out) < (hi-lo-1)*stride+jhi {
		panic("linalg: gram panel output too short")
	}
	for j := jlo; j < jhi; j++ {
		if len(v[j]) != k {
			panic("linalg: gram rows of unequal length")
		}
	}
	for i := lo; i < hi; i++ {
		if len(v[i]) != k {
			panic("linalg: gram rows of unequal length")
		}
	}
	return k, true
}

// gramBlockScalar is the portable register-blocked kernel behind
// GramBlock; bounds are already validated.
func gramBlockScalar[F Float](v [][]F, k, lo, hi, jlo, jhi int, out []F, stride int) {
	i := lo
	// 4-row register block: one pass over columns j streams v[j] once
	// against four L1-resident left-hand rows, giving four independent
	// single-chain accumulations per column.
	for ; i+4 <= hi; i += 4 {
		v0 := v[i][:k]
		v1 := v[i+1][:k]
		v2 := v[i+2][:k]
		v3 := v[i+3][:k]
		o0 := out[(i-lo)*stride : (i-lo)*stride+jhi]
		o1 := out[(i-lo+1)*stride : (i-lo+1)*stride+jhi]
		o2 := out[(i-lo+2)*stride : (i-lo+2)*stride+jhi]
		o3 := out[(i-lo+3)*stride : (i-lo+3)*stride+jhi]
		for j := jlo; j < jhi; j++ {
			vj := v[j][:k]
			var d0, d1, d2, d3 F
			for x := 0; x < k; x++ {
				c := vj[x]
				d0 += v0[x] * c
				d1 += v1[x] * c
				d2 += v2[x] * c
				d3 += v3[x] * c
			}
			o0[j] = d0
			o1[j] = d1
			o2[j] = d2
			o3[j] = d3
		}
	}
	// Ragged tail: fewer than four rows left.
	for ; i < hi; i++ {
		vi := v[i][:k]
		oi := out[(i-lo)*stride : (i-lo)*stride+jhi]
		for j := jlo; j < jhi; j++ {
			vj := v[j][:k]
			var d F
			for x := 0; x < k; x++ {
				d += vi[x] * vj[x]
			}
			oi[j] = d
		}
	}
}

// GramBlockT is GramBlock with a caller-maintained transposed copy of
// the full row set: vt[x·len(v) + j] = v[j][x] (see TransposeInto). The
// transpose turns the column dimension into the contiguous one, which
// lets the amd64 SIMD kernel broadcast a[i][x] against adjacent output
// columns — vector lanes span *independent output elements*, so each
// element keeps the scalar loop's single forward accumulation chain and
// the float64 result stays bit-identical to GramBlock. Rows v[lo..hi)
// must additionally lie at a constant stride in one backing array (the
// layout the predictors' pooled scratch carves); when they don't, or on
// platforms without the kernel, GramBlockT falls back to GramBlock.
func GramBlockT[F Float](v [][]F, vt []F, lo, hi, jlo, jhi int, out []F, stride int) {
	k, ok := checkGramBounds(v, lo, hi, jlo, jhi, out, stride)
	if !ok {
		return
	}
	if len(vt) < k*len(v) {
		panic("linalg: gram transpose buffer too short")
	}
	jcut := jlo
	if k > 0 {
		switch vv := any(v).(type) {
		case [][]float64:
			jcut = gramTransF64(vv, any(vt).([]float64), lo, hi, jlo, jhi, any(out).([]float64), stride)
		case [][]float32:
			jcut = gramTransF32(vv, any(vt).([]float32), lo, hi, jlo, jhi, any(out).([]float32), stride)
		}
	}
	if jcut < jhi {
		gramBlockScalar(v, k, lo, hi, jcut, jhi, out, stride)
	}
}

// TransposeInto fills dst with the k×n transpose of the n-row, k-column
// row set v: dst[x·n + j] = v[j][x], row-major with rows of length n.
// dst must hold at least n·k elements. The copy is tiled so the strided
// reads stay cache-resident; it is the one-time setup cost that lets
// GramBlockT stream unit-stride SIMD loads for the whole pairwise pass.
func TransposeInto[F Float](v [][]F, dst []F) {
	n := len(v)
	if n == 0 {
		return
	}
	k := len(v[0])
	if len(dst) < n*k {
		panic("linalg: TransposeInto destination too short")
	}
	for _, row := range v {
		if len(row) != k {
			panic("linalg: TransposeInto rows of unequal length")
		}
	}
	const tile = 32
	for j0 := 0; j0 < n; j0 += tile {
		j1 := j0 + tile
		if j1 > n {
			j1 = n
		}
		for x0 := 0; x0 < k; x0 += tile {
			x1 := x0 + tile
			if x1 > k {
				x1 = k
			}
			for x := x0; x < x1; x++ {
				row := dst[x*n : x*n+n]
				for j := j0; j < j1; j++ {
					row[j] = v[j][x]
				}
			}
		}
	}
}

// Gram returns the full symmetric Gram matrix G = V·Vᵀ of the row set v.
// It computes only the lower triangle (in register-blocked panels) and
// mirrors it, which is bit-safe because ⟨v[i], v[j]⟩ and ⟨v[j], v[i]⟩
// round identically under the forward-order contract above. Intended for
// tests, benchmarks and small row sets; large passes should stream
// GramPanel panels instead of materializing the B×B matrix.
func Gram(v [][]float64) *Matrix {
	n := len(v)
	if n == 0 {
		panic("linalg: Gram of empty row set")
	}
	m := NewMatrix(n, n)
	GramInto(v, m.Data)
	return m
}

// GramInto is Gram with caller-provided storage: out must hold n² elements
// for n = len(v) and receives the full symmetric matrix row-major. It lets
// hot paths reuse a pooled buffer instead of allocating B² floats per call.
func GramInto(v [][]float64, out []float64) {
	n := len(v)
	if len(out) < n*n {
		panic("linalg: GramInto output too short")
	}
	for lo := 0; lo < n; lo += gramPanelRows {
		hi := lo + gramPanelRows
		if hi > n {
			hi = n
		}
		// Rectangular block covering each panel row's lower triangle
		// (plus the within-panel upper corner of the diagonal block,
		// which is valid Gram output either way).
		GramBlock(v, lo, hi, 0, hi, out[lo*n:], n)
	}
	MirrorLowerUpper(out, n)
}

// MirrorLowerUpper copies the strict lower triangle of the n×n row-major
// matrix m onto the upper triangle, completing a symmetric fill. The copy
// runs over square tiles (a blocked transpose) so the strided source
// reads stay cache-resident at large n.
func MirrorLowerUpper[F Float](m []F, n int) {
	if len(m) < n*n {
		panic("linalg: MirrorLowerUpper matrix too short")
	}
	const tile = 32
	for i0 := 0; i0 < n; i0 += tile {
		i1 := i0 + tile
		if i1 > n {
			i1 = n
		}
		// Destination tiles right of the diagonal: rows [i0,i1),
		// columns [j0,j1) with j0 ≥ i0, sourced from the transposed
		// lower-triangle tile.
		for j0 := i0; j0 < n; j0 += tile {
			j1 := j0 + tile
			if j1 > n {
				j1 = n
			}
			for i := i0; i < i1; i++ {
				jStart := j0
				if jStart <= i {
					jStart = i + 1
				}
				row := m[i*n : (i+1)*n]
				for j := jStart; j < j1; j++ {
					row[j] = m[j*n+i]
				}
			}
		}
	}
}

// SecondMomentLower accumulates the lower triangle (row-major, diagonal
// included) of Σ_i scale·v[i]·v[i]ᵀ into out, which must have length
// k·(k+1)/2 for row length k and is overwritten. The accumulation order
// is exactly the serial loop the mutex-guarded VecAccumulator ran under
// workers=1 — i ascending, each term formed as (v[i][p]·scale)·v[i][q] —
// so the result is bit-identical to that path and independent of caller
// parallelism. FusedBlockMoments performs the same accumulation (same
// order, same float64 arithmetic) inside the standardization pass; this
// standalone routine remains as the reference the fused pass is tested
// against.
func SecondMomentLower(v [][]float64, scale float64, out []float64) {
	if len(v) == 0 {
		for i := range out {
			out[i] = 0
		}
		return
	}
	k := len(v[0])
	if len(out) != k*(k+1)/2 {
		panic("linalg: SecondMomentLower output length mismatch")
	}
	for i := range out {
		out[i] = 0
	}
	for _, vi := range v {
		if len(vi) != k {
			panic("linalg: SecondMomentLower rows of unequal length")
		}
		idx := 0
		for p := 0; p < k; p++ {
			xp := vi[p] * scale
			row := out[idx : idx+p+1]
			for q := 0; q <= p; q++ {
				row[q] += xp * vi[q]
			}
			idx += p + 1
		}
	}
}
