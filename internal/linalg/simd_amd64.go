//go:build amd64

package linalg

import "unsafe"

// simd_amd64.go dispatches the hot kernels to the AVX2 routines in
// simd_amd64.s when the CPU (and OS) support them. Detection is done
// once at init via raw CPUID/XGETBV — no build tags or cgo, so a binary
// built anywhere runs anywhere and simply falls back to the portable
// scalar kernels on older hardware.

// haveAVX2FMA gates every SIMD kernel: AVX2 for the 256-bit integer/FP
// lane operations, FMA for the float32 kernels, and OS-enabled YMM state
// (OSXSAVE + XCR0) so the registers survive context switches.
var haveAVX2FMA = detectAVX2FMA()

// SIMDEnabled reports whether the AVX2 kernels are active on this
// process (exported for benchmarks and the differential tests, which
// document which code path their ULP bounds were measured against).
func SIMDEnabled() bool { return haveAVX2FMA }

func detectAVX2FMA() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, c1, _ := cpuid(1, 0)
	const (
		fma     = 1 << 12
		osxsave = 1 << 27
		avx     = 1 << 28
	)
	if c1&fma == 0 || c1&osxsave == 0 || c1&avx == 0 {
		return false
	}
	// XCR0 bits 1 (SSE) and 2 (AVX): the OS saves YMM state.
	eax, _ := xgetbv0()
	if eax&6 != 6 {
		return false
	}
	_, b7, _, _ := cpuid(7, 0)
	const avx2 = 1 << 5
	return b7&avx2 != 0
}

// cpuid and xgetbv0 are implemented in simd_amd64.s.
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
func xgetbv0() (eax, edx uint32)

// rowsStrided reports whether rows [lo, hi) of v lie at a constant
// stride of k elements from v[lo] in one backing array — the layout the
// predictors' pooled scratch carves — so the assembly kernels can
// address row r as base + r·k·sizeof(F).
func rowsStrided[F Float](v [][]F, lo, hi, k int) bool {
	var z F
	es := unsafe.Sizeof(z)
	base := unsafe.Pointer(unsafe.SliceData(v[lo]))
	for i := lo + 1; i < hi; i++ {
		if unsafe.Pointer(unsafe.SliceData(v[i])) != unsafe.Add(base, uintptr(i-lo)*uintptr(k)*es) {
			return false
		}
	}
	return true
}

// gramTransF64 runs the AVX2 float64 Gram kernel over columns
// [jlo, jlo+njv) where njv is the widest multiple of 4 that fits, and
// returns the first column it did NOT compute (the caller finishes the
// ragged tail with the scalar kernel). The kernel issues separate
// VMULPD/VADDPD per element — no FMA — so each output element performs
// the scalar loop's exact round(mul) → round(add) sequence and the
// result is bit-identical to GramBlock.
func gramTransF64(v [][]float64, vt []float64, lo, hi, jlo, jhi int, out []float64, stride int) int {
	if !haveAVX2FMA {
		return jlo
	}
	k := len(v[lo])
	njv := (jhi - jlo) &^ 3
	if k == 0 || njv == 0 || !rowsStrided(v, lo, hi, k) {
		return jlo
	}
	gramTransKernelF64(
		unsafe.Pointer(unsafe.SliceData(v[lo])),
		unsafe.Pointer(&vt[jlo]),
		unsafe.Pointer(&out[jlo]),
		uint64(k), uint64(hi-lo), uint64(njv),
		uint64(k), uint64(len(v)), uint64(stride))
	return jlo + njv
}

// gramTransF32 is the float32 variant: 8 lanes with FMA. Deterministic
// (fixed instruction sequence per element) but only ULP-equivalent to
// the float32 scalar fallback, since FMA rounds once per step.
func gramTransF32(v [][]float32, vt []float32, lo, hi, jlo, jhi int, out []float32, stride int) int {
	if !haveAVX2FMA {
		return jlo
	}
	k := len(v[lo])
	njv := (jhi - jlo) &^ 7
	if k == 0 || njv == 0 || !rowsStrided(v, lo, hi, k) {
		return jlo
	}
	gramTransKernelF32(
		unsafe.Pointer(unsafe.SliceData(v[lo])),
		unsafe.Pointer(&vt[jlo]),
		unsafe.Pointer(&out[jlo]),
		uint64(k), uint64(hi-lo), uint64(njv),
		uint64(k), uint64(len(v)), uint64(stride))
	return jlo + njv
}

// gramTransKernelF64 computes out[i·ldo+j] = Σ_x a[i·lda+x]·bt[x·ldb+j]
// for i in [0,ni), j in [0,nj) with nj a positive multiple of 4 and
// k ≥ 1; strides are in elements. Implemented in simd_amd64.s.
//
//go:noescape
func gramTransKernelF64(a, bt, out unsafe.Pointer, k, ni, nj, lda, ldb, ldo uint64)

// gramTransKernelF32 is the 8-lane FMA float32 variant; nj must be a
// positive multiple of 8.
//
//go:noescape
func gramTransKernelF32(a, bt, out unsafe.Pointer, k, ni, nj, lda, ldb, ldo uint64)

// pairConsts32 carries the left-block constants of one pairwise-reduce
// row; the layout is mirrored by the VBROADCASTSS offsets in the
// assembly, so the field order is load-bearing.
type pairConsts32 struct {
	ri, ci, n2i, mi, invSdI, invK2 float32
}

// pairReduceKernelF32 accumulates the three pairwise sums over
// j in [0, n) with n a positive multiple of 8, writing the lane-reduced
// partial sums into sums. Implemented in simd_amd64.s.
//
//go:noescape
func pairReduceKernelF32(row, posR, posC, norm2, mean, invSd unsafe.Pointer, n uint64, consts *pairConsts32, sums *[3]float32)

// pairReduceVecF32 runs the AVX2 pairwise reduce over the widest
// multiple-of-8 prefix and returns how many elements it consumed plus
// the three partial sums; the caller finishes the tail in scalar code.
func pairReduceVecF32(row, posR, posC, norm2, mean, invSd []float32, c pairConsts32) (n int, sums [3]float32) {
	nv := len(row) &^ 7
	if !haveAVX2FMA || nv == 0 {
		return 0, sums
	}
	pairReduceKernelF32(
		unsafe.Pointer(unsafe.SliceData(row)),
		unsafe.Pointer(unsafe.SliceData(posR)),
		unsafe.Pointer(unsafe.SliceData(posC)),
		unsafe.Pointer(unsafe.SliceData(norm2)),
		unsafe.Pointer(unsafe.SliceData(mean)),
		unsafe.Pointer(unsafe.SliceData(invSd)),
		uint64(nv), &c, &sums)
	return nv, sums
}
