package linalg

import (
	"math"
	"slices"
	"sort"
)

// SymEigen computes the eigendecomposition of a symmetric matrix using the
// cyclic Jacobi method. It returns the eigenvalues in descending order and
// the matrix of corresponding eigenvectors (columns). This is the kernel
// the paper offloads to the GPU for the coding-gain and CovSVD-trunc
// metrics.
func SymEigen(a *Matrix) (values []float64, vectors *Matrix) {
	return symEigen(a, true)
}

// SymEigenValues computes only the eigenvalues (descending), skipping the
// rotation accumulation — roughly twice as fast, and all the predictors
// need (§IV-C's k⁶ term).
func SymEigenValues(a *Matrix) []float64 {
	values, _ := symEigen(a, false)
	return values
}

// SymEigenValuesInto is SymEigenValues with caller-provided storage for
// zero-allocation hot paths: out receives the eigenvalues (descending,
// length ≥ n) and work (length ≥ n²) holds the Jacobi iterate, so the
// call allocates nothing. The sweep schedule is identical to
// SymEigenValues, and sorting a multiset of values descending is
// order-insensitive, so the returned slice is bit-identical to
// SymEigenValues(a).
func SymEigenValuesInto(a *Matrix, out, work []float64) []float64 {
	n := a.Rows
	if a.Cols != n {
		panic("linalg: SymEigen of non-square matrix")
	}
	if len(out) < n || len(work) < n*n {
		panic("linalg: SymEigenValuesInto storage too short")
	}
	work = work[:n*n]
	copy(work, a.Data)
	w := Matrix{Rows: n, Cols: n, Data: work}
	jacobiSweeps(&w, nil)
	out = out[:n]
	for i := 0; i < n; i++ {
		out[i] = work[i*n+i]
	}
	slices.Sort(out)
	for i, j := 0, n-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

func symEigen(a *Matrix, wantVectors bool) (values []float64, vectors *Matrix) {
	n := a.Rows
	if a.Cols != n {
		panic("linalg: SymEigen of non-square matrix")
	}
	// Work on a copy; accumulate rotations in v.
	w := a.Clone()
	var v *Matrix
	if wantVectors {
		v = NewMatrix(n, n)
		for i := 0; i < n; i++ {
			v.Set(i, i, 1)
		}
	}
	jacobiSweeps(w, v)
	values = make([]float64, n)
	for i := 0; i < n; i++ {
		values[i] = w.At(i, i)
	}
	// Sort descending, permuting eigenvector columns to match.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return values[idx[i]] > values[idx[j]] })
	sorted := make([]float64, n)
	if wantVectors {
		vectors = NewMatrix(n, n)
	}
	for newCol, oldCol := range idx {
		sorted[newCol] = values[oldCol]
		if wantVectors {
			for r := 0; r < n; r++ {
				vectors.Set(r, newCol, v.At(r, oldCol))
			}
		}
	}
	return sorted, vectors
}

// jacobiSweeps runs the thresholded cyclic Jacobi iteration on w in
// place, accumulating rotations into v when non-nil.
func jacobiSweeps(w, v *Matrix) {
	n := w.Rows
	const maxSweeps = 48
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiagNorm(w)
		if off == 0 {
			break
		}
		// Convergence relative to the matrix scale. Jacobi converges
		// quadratically, so a 1e-9 relative off-diagonal norm leaves
		// eigenvalues accurate far beyond what the downstream metrics
		// resolve.
		scale := frobNorm(w)
		if scale == 0 || off <= 1e-9*scale {
			break
		}
		// Thresholded sweep: rotations that cannot move the off-diagonal
		// norm past the convergence target are skipped (classic
		// thresholded Jacobi), which prunes most of the late sweeps.
		thresh := 1e-10 * scale / float64(n)
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if apq == 0 || math.Abs(apq) < thresh {
					continue
				}
				app, aqq := w.At(p, p), w.At(q, q)
				// Rotation angle per Golub & Van Loan.
				tau := (aqq - app) / (2 * apq)
				var t float64
				if tau >= 0 {
					t = 1 / (tau + math.Sqrt(1+tau*tau))
				} else {
					t = -1 / (-tau + math.Sqrt(1+tau*tau))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				rotate(w, p, q, c, s)
				if v != nil {
					rotateCols(v, p, q, c, s)
				}
			}
		}
	}
}

// rotate applies the two-sided Jacobi rotation J(p,q,θ)ᵀ A J(p,q,θ) in
// place on symmetric w, operating on the rows directly for speed.
func rotate(w *Matrix, p, q int, c, s float64) {
	n := w.Rows
	rowP, rowQ := w.Row(p), w.Row(q)
	app, aqq, apq := rowP[p], rowQ[q], rowP[q]
	newPP := c*c*app - 2*s*c*apq + s*s*aqq
	newQQ := s*s*app + 2*s*c*apq + c*c*aqq
	// Update rows p and q (and mirror onto columns via symmetry).
	for i := 0; i < n; i++ {
		if i == p || i == q {
			continue
		}
		aip, aiq := rowP[i], rowQ[i]
		nip := c*aip - s*aiq
		niq := s*aip + c*aiq
		rowP[i], rowQ[i] = nip, niq
		w.Data[i*n+p] = nip
		w.Data[i*n+q] = niq
	}
	rowP[p], rowQ[q] = newPP, newQQ
	rowP[q], rowQ[p] = 0, 0
}

// rotateCols applies the rotation to the eigenvector accumulator columns.
func rotateCols(v *Matrix, p, q int, c, s float64) {
	n := v.Cols
	for i := 0; i < v.Rows; i++ {
		row := v.Data[i*n:]
		vip, viq := row[p], row[q]
		row[p] = c*vip - s*viq
		row[q] = s*vip + c*viq
	}
}

func offDiagNorm(w *Matrix) float64 {
	var s float64
	n := w.Rows
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			s += 2 * w.At(i, j) * w.At(i, j)
		}
	}
	return math.Sqrt(s)
}

func frobNorm(w *Matrix) float64 {
	var s float64
	for _, v := range w.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// SingularValues returns the singular values of a general m×n matrix in
// descending order, computed as the square roots of the eigenvalues of the
// smaller Gram matrix (AᵀA or AAᵀ). Tiny negative eigenvalues from
// round-off are clamped to zero.
func SingularValues(a *Matrix) []float64 {
	var gram *Matrix
	if a.Rows >= a.Cols {
		gram = gramT(a) // AᵀA, n×n
	} else {
		gram = gramN(a) // AAᵀ, m×m
	}
	vals, _ := SymEigen(gram)
	out := make([]float64, len(vals))
	for i, v := range vals {
		if v < 0 {
			v = 0
		}
		out[i] = math.Sqrt(v)
	}
	return out
}

func gramT(a *Matrix) *Matrix {
	n := a.Cols
	g := NewMatrix(n, n)
	for r := 0; r < a.Rows; r++ {
		row := a.Row(r)
		g.AddOuter(row, 1)
	}
	return g
}

func gramN(a *Matrix) *Matrix {
	m := a.Rows
	g := NewMatrix(m, m)
	for i := 0; i < m; i++ {
		ri := a.Row(i)
		for j := i; j < m; j++ {
			rj := a.Row(j)
			var s float64
			for k := range ri {
				s += ri[k] * rj[k]
			}
			g.Set(i, j, s)
			g.Set(j, i, s)
		}
	}
	return g
}

// PCAResult holds a principal component analysis: component directions
// (rows of Components), the explained variance of each component, and the
// column means removed before projection.
type PCAResult struct {
	Components *Matrix   // nComp × d, rows are unit principal directions
	Variance   []float64 // explained variance per component, descending
	Means      []float64 // column means of the input
}

// PCA fits a principal component analysis to the n×d row-sample matrix x
// and keeps nComp components. It is used to reproduce the paper's Fig. 2
// cluster visualization.
func PCA(x *Matrix, nComp int) *PCAResult {
	n, d := x.Rows, x.Cols
	if nComp > d {
		nComp = d
	}
	means := make([]float64, d)
	for i := 0; i < n; i++ {
		row := x.Row(i)
		for j, v := range row {
			means[j] += v
		}
	}
	for j := range means {
		means[j] /= float64(n)
	}
	cov := NewMatrix(d, d)
	centered := make([]float64, d)
	for i := 0; i < n; i++ {
		row := x.Row(i)
		for j, v := range row {
			centered[j] = v - means[j]
		}
		cov.AddOuter(centered, 1)
	}
	if n > 1 {
		cov.Scale(1 / float64(n-1))
	}
	vals, vecs := SymEigen(cov)
	res := &PCAResult{
		Components: NewMatrix(nComp, d),
		Variance:   make([]float64, nComp),
		Means:      means,
	}
	for c := 0; c < nComp; c++ {
		res.Variance[c] = vals[c]
		for j := 0; j < d; j++ {
			res.Components.Set(c, j, vecs.At(j, c))
		}
	}
	return res
}

// Transform projects the rows of x onto the principal components,
// returning an n×nComp score matrix.
func (p *PCAResult) Transform(x *Matrix) *Matrix {
	n := x.Rows
	nComp := p.Components.Rows
	out := NewMatrix(n, nComp)
	for i := 0; i < n; i++ {
		row := x.Row(i)
		for c := 0; c < nComp; c++ {
			comp := p.Components.Row(c)
			var s float64
			for j, v := range row {
				s += (v - p.Means[j]) * comp[j]
			}
			out.Set(i, c, s)
		}
	}
	return out
}
