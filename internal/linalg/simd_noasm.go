//go:build !amd64

package linalg

// Portable stubs: without the amd64 kernels every dispatch returns "not
// handled" and the callers run the scalar fallbacks.

// SIMDEnabled reports whether the AVX2 kernels are active (never, off
// amd64).
func SIMDEnabled() bool { return false }

func gramTransF64(v [][]float64, vt []float64, lo, hi, jlo, jhi int, out []float64, stride int) int {
	return jlo
}

func gramTransF32(v [][]float32, vt []float32, lo, hi, jlo, jhi int, out []float32, stride int) int {
	return jlo
}

type pairConsts32 struct {
	ri, ci, n2i, mi, invSdI, invK2 float32
}

func pairReduceVecF32(row, posR, posC, norm2, mean, invSd []float32, c pairConsts32) (n int, sums [3]float32) {
	return 0, sums
}
