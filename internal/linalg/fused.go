package linalg

import "math"

// fused.go is the tentpole of the single-traversal predictor pass: the
// standardization of the B×k² block matrix, the per-block moments
// (mean, standard deviation, squared norm) that SD/SC consume, and the
// second-moment lower triangle Σ = scale·Σ_i v[i]·v[i]ᵀ that CG/CovSVD
// consume were previously three separate walks over the 16 MB (f64 at
// 512²/k=8) block matrix. FusedBlockMoments performs all of them in one
// pass while each block row is L1-resident.

// FusedBlockMoments standardizes every row of v in place with the global
// moments (gm, gsd) — v[i][j] ← F((v[i][j]−gm)/gsd) — and, in the same
// traversal, fills the per-row statistics and the scaled second-moment
// lower triangle:
//
//	mean[i]  = (1/k)·Σ_j v[i][j]          (after standardization)
//	sd[i]    = sqrt(max(0, Σv²/k − mean²))
//	norm2[i] = Σ_j v[i][j]²
//	lower    = row-major lower triangle (diagonal included, length
//	           k·(k+1)/2) of Σ_i scale·v[i]·v[i]ᵀ, overwritten
//
// All accumulators are float64 regardless of F; for F = float32 each
// element is widened exactly before accumulation, so the moment sums
// carry no accumulated narrowing drift — only the stored standardized
// values are rounded to float32.
//
// Bit-identity contract (F = float64): every accumulation chain here is
// the exact sequence of the unfused reference — per-row forward s/s²
// sums (stats.MeanStd's order), norm2 sharing the s² chain, and the
// triangle accumulated in SecondMomentLower's order (i ascending, terms
// formed as (v[i][p]·scale)·v[i][q]). Interleaving the rows of the three
// walks does not reorder any individual chain, so the fused pass is
// bit-identical to the separate passes at every worker count.
func FusedBlockMoments[F Float](v [][]F, gm, gsd, scale float64, mean, sd, norm2, lower []float64) {
	for i := range lower {
		lower[i] = 0
	}
	if len(v) == 0 {
		return
	}
	k := len(v[0])
	if len(lower) != k*(k+1)/2 {
		panic("linalg: FusedBlockMoments lower-triangle length mismatch")
	}
	if len(mean) < len(v) || len(sd) < len(v) || len(norm2) < len(v) {
		panic("linalg: FusedBlockMoments moment buffers too short")
	}
	fk := float64(k)
	for bi, vec := range v {
		if len(vec) != k {
			panic("linalg: FusedBlockMoments rows of unequal length")
		}
		var s, s2 float64
		for j, raw := range vec {
			x := (float64(raw) - gm) / gsd
			xf := F(x)
			vec[j] = xf
			xs := float64(xf)
			s += xs
			s2 += xs * xs
		}
		m := s / fk
		va := s2/fk - m*m
		if va < 0 {
			va = 0
		}
		mean[bi] = m
		sd[bi] = math.Sqrt(va)
		norm2[bi] = s2
		// Rank-1 lower-triangle update in SecondMomentLower's order,
		// while this row is still cache-hot.
		idx := 0
		for p := 0; p < k; p++ {
			xp := float64(vec[p]) * scale
			row := lower[idx : idx+p+1]
			for q := 0; q <= p; q++ {
				row[q] += xp * float64(vec[q])
			}
			idx += p + 1
		}
	}
}
