// AVX2 kernels behind simd_amd64.go. See gram.go for the determinism
// contract: the float64 Gram kernel uses separate VMULPD/VADDPD (no FMA)
// so every output element performs the scalar loop's exact rounding
// sequence; the float32 kernels use FMA and are deterministic but only
// ULP-equivalent to the scalar fallback.

#include "textflag.h"

// func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func gramTransKernelF64(a, bt, out unsafe.Pointer, k, ni, nj, lda, ldb, ldo uint64)
//
// out[i*ldo+j] = sum_x a[i*lda+x] * bt[x*ldb+j], i in [0,ni), j in [0,nj);
// nj is a positive multiple of 4, k >= 1, strides in elements.
//
// Micro-kernel: 4 left rows x 4 output columns. Per x step one VMOVUPD
// streams bt row x, four VBROADCASTSD replay a[i..i+3][x], and each
// accumulator takes a separate multiply then add — four independent
// scalar-order chains per vector lane.
TEXT ·gramTransKernelF64(SB), NOSPLIT, $0-72
	MOVQ a+0(FP), R15
	MOVQ out+16(FP), DI
	MOVQ ni+32(FP), BX
	MOVQ lda+48(FP), R9
	SHLQ $3, R9             // a row stride, bytes
	LEAQ (R9)(R9*2), R10    // 3 * a row stride
	MOVQ ldb+56(FP), R11
	SHLQ $3, R11            // bt row stride, bytes
	MOVQ ldo+64(FP), R8
	SHLQ $3, R8             // out row stride, bytes

d64iblock:
	CMPQ BX, $4
	JLT  d64itail
	XORQ R12, R12           // j element index

d64jloop4:
	MOVQ bt+8(FP), R13
	LEAQ (R13)(R12*8), R13  // bt column base + j
	MOVQ R15, AX            // a row-block base
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	MOVQ k+24(FP), R14

d64xloop4:
	VMOVUPD (R13), Y4
	VBROADCASTSD (AX), Y5
	VMULPD Y4, Y5, Y6
	VADDPD Y6, Y0, Y0
	VBROADCASTSD (AX)(R9*1), Y5
	VMULPD Y4, Y5, Y6
	VADDPD Y6, Y1, Y1
	VBROADCASTSD (AX)(R9*2), Y5
	VMULPD Y4, Y5, Y6
	VADDPD Y6, Y2, Y2
	VBROADCASTSD (AX)(R10*1), Y5
	VMULPD Y4, Y5, Y6
	VADDPD Y6, Y3, Y3
	ADDQ $8, AX
	ADDQ R11, R13
	DECQ R14
	JNZ  d64xloop4

	LEAQ (DI)(R12*8), DX
	VMOVUPD Y0, (DX)
	VMOVUPD Y1, (DX)(R8*1)
	VMOVUPD Y2, (DX)(R8*2)
	LEAQ (R8)(R8*2), CX
	VMOVUPD Y3, (DX)(CX*1)
	ADDQ $4, R12
	MOVQ nj+40(FP), CX
	CMPQ R12, CX
	JLT  d64jloop4

	LEAQ (R15)(R9*4), R15
	LEAQ (DI)(R8*4), DI
	SUBQ $4, BX
	JMP  d64iblock

d64itail:
	TESTQ BX, BX
	JZ   d64done
	XORQ R12, R12

d64jloop1:
	MOVQ bt+8(FP), R13
	LEAQ (R13)(R12*8), R13
	MOVQ R15, AX
	VXORPD Y0, Y0, Y0
	MOVQ k+24(FP), R14

d64xloop1:
	VMOVUPD (R13), Y4
	VBROADCASTSD (AX), Y5
	VMULPD Y4, Y5, Y6
	VADDPD Y6, Y0, Y0
	ADDQ $8, AX
	ADDQ R11, R13
	DECQ R14
	JNZ  d64xloop1

	LEAQ (DI)(R12*8), DX
	VMOVUPD Y0, (DX)
	ADDQ $4, R12
	MOVQ nj+40(FP), CX
	CMPQ R12, CX
	JLT  d64jloop1

	ADDQ R9, R15
	ADDQ R8, DI
	DECQ BX
	JMP  d64itail

d64done:
	VZEROUPPER
	RET

// func gramTransKernelF32(a, bt, out unsafe.Pointer, k, ni, nj, lda, ldb, ldo uint64)
//
// Float32 variant: 8 lanes, FMA. nj is a positive multiple of 8.
TEXT ·gramTransKernelF32(SB), NOSPLIT, $0-72
	MOVQ a+0(FP), R15
	MOVQ out+16(FP), DI
	MOVQ ni+32(FP), BX
	MOVQ lda+48(FP), R9
	SHLQ $2, R9
	LEAQ (R9)(R9*2), R10
	MOVQ ldb+56(FP), R11
	SHLQ $2, R11
	MOVQ ldo+64(FP), R8
	SHLQ $2, R8

d32iblock:
	CMPQ BX, $4
	JLT  d32itail
	XORQ R12, R12

d32jloop4:
	MOVQ bt+8(FP), R13
	LEAQ (R13)(R12*4), R13
	MOVQ R15, AX
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	MOVQ k+24(FP), R14

d32xloop4:
	VMOVUPS (R13), Y4
	VBROADCASTSS (AX), Y5
	VFMADD231PS Y4, Y5, Y0
	VBROADCASTSS (AX)(R9*1), Y5
	VFMADD231PS Y4, Y5, Y1
	VBROADCASTSS (AX)(R9*2), Y5
	VFMADD231PS Y4, Y5, Y2
	VBROADCASTSS (AX)(R10*1), Y5
	VFMADD231PS Y4, Y5, Y3
	ADDQ $4, AX
	ADDQ R11, R13
	DECQ R14
	JNZ  d32xloop4

	LEAQ (DI)(R12*4), DX
	VMOVUPS Y0, (DX)
	VMOVUPS Y1, (DX)(R8*1)
	VMOVUPS Y2, (DX)(R8*2)
	LEAQ (R8)(R8*2), CX
	VMOVUPS Y3, (DX)(CX*1)
	ADDQ $8, R12
	MOVQ nj+40(FP), CX
	CMPQ R12, CX
	JLT  d32jloop4

	LEAQ (R15)(R9*4), R15
	LEAQ (DI)(R8*4), DI
	SUBQ $4, BX
	JMP  d32iblock

d32itail:
	TESTQ BX, BX
	JZ   d32done
	XORQ R12, R12

d32jloop1:
	MOVQ bt+8(FP), R13
	LEAQ (R13)(R12*4), R13
	MOVQ R15, AX
	VXORPS Y0, Y0, Y0
	MOVQ k+24(FP), R14

d32xloop1:
	VMOVUPS (R13), Y4
	VBROADCASTSS (AX), Y5
	VFMADD231PS Y4, Y5, Y0
	ADDQ $4, AX
	ADDQ R11, R13
	DECQ R14
	JNZ  d32xloop1

	LEAQ (DI)(R12*4), DX
	VMOVUPS Y0, (DX)
	ADDQ $8, R12
	MOVQ nj+40(FP), CX
	CMPQ R12, CX
	JLT  d32jloop1

	ADDQ R9, R15
	ADDQ R8, DI
	DECQ BX
	JMP  d32itail

d32done:
	VZEROUPPER
	RET

// func pairReduceKernelF32(row, posR, posC, norm2, mean, invSd unsafe.Pointer, n uint64, consts *pairConsts32, sums *[3]float32)
//
// Eight pairs per iteration of the SD/SC pairwise reduction:
//
//	ds   = |ri - posR[j]| + |ci - posC[j]|
//	de   = sqrt(max(0, n2i + norm2[j] - 2*row[j]))
//	rho  = clamp(|(row[j]*invK2 - mi*mean[j]) * invSdI * invSd[j]|, 0, 1)
//	sums = (sum ds, sum ds*de, sum ds*rho)
//
// Lane accumulators are horizontally folded with a fixed VHADDPS tree,
// so the result is deterministic for a given n.
TEXT ·pairReduceKernelF32(SB), NOSPLIT, $0-72
	MOVQ row+0(FP), SI
	MOVQ posR+8(FP), R8
	MOVQ posC+16(FP), R9
	MOVQ norm2+24(FP), R10
	MOVQ mean+32(FP), R11
	MOVQ invSd+40(FP), R12
	MOVQ n+48(FP), CX
	MOVQ consts+56(FP), DX
	VBROADCASTSS 0(DX), Y8      // ri
	VBROADCASTSS 4(DX), Y9      // ci
	VBROADCASTSS 8(DX), Y10     // n2i
	VBROADCASTSS 12(DX), Y11    // mi
	VBROADCASTSS 16(DX), Y12    // invSdI
	VBROADCASTSS 20(DX), Y13    // invK2
	MOVL $0x7FFFFFFF, AX        // abs mask
	MOVL AX, X14
	VBROADCASTSS X14, Y14
	MOVL $0x3F800000, AX        // 1.0f
	MOVL AX, X15
	VBROADCASTSS X15, Y15
	VXORPS Y0, Y0, Y0           // sum ds
	VXORPS Y1, Y1, Y1           // sum ds*de
	VXORPS Y2, Y2, Y2           // sum ds*rho

prloop:
	VMOVUPS (R8), Y3
	VSUBPS Y3, Y8, Y4           // ri - posR
	VANDPS Y14, Y4, Y4
	VMOVUPS (R9), Y3
	VSUBPS Y3, Y9, Y5           // ci - posC
	VANDPS Y14, Y5, Y5
	VADDPS Y5, Y4, Y4           // ds
	VMOVUPS (SI), Y5            // dot
	VMOVUPS (R10), Y3
	VADDPS Y10, Y3, Y3          // n2i + norm2[j]
	VADDPS Y5, Y5, Y6           // 2*dot
	VSUBPS Y6, Y3, Y3           // de2
	VXORPS Y6, Y6, Y6
	VMAXPS Y6, Y3, Y3           // clamp to >= 0
	VSQRTPS Y3, Y3              // de
	VMULPS Y13, Y5, Y5          // dot * invK2
	VMOVUPS (R11), Y6
	VMULPS Y11, Y6, Y6          // mi * mean[j]
	VSUBPS Y6, Y5, Y5           // cov
	VMULPS Y12, Y5, Y5          // * invSdI
	VMOVUPS (R12), Y6
	VMULPS Y6, Y5, Y5           // rho
	VANDPS Y14, Y5, Y5          // |rho|
	VMINPS Y15, Y5, Y5          // min(|rho|, 1)
	VADDPS Y4, Y0, Y0
	VFMADD231PS Y3, Y4, Y1      // += ds*de
	VFMADD231PS Y5, Y4, Y2      // += ds*rho
	ADDQ $32, SI
	ADDQ $32, R8
	ADDQ $32, R9
	ADDQ $32, R10
	ADDQ $32, R11
	ADDQ $32, R12
	SUBQ $8, CX
	JNZ  prloop

	MOVQ sums+64(FP), DX
	VEXTRACTF128 $1, Y0, X3
	VADDPS X3, X0, X0
	VHADDPS X0, X0, X0
	VHADDPS X0, X0, X0
	VMOVSS X0, 0(DX)
	VEXTRACTF128 $1, Y1, X3
	VADDPS X3, X1, X1
	VHADDPS X1, X1, X1
	VHADDPS X1, X1, X1
	VMOVSS X1, 4(DX)
	VEXTRACTF128 $1, Y2, X3
	VADDPS X3, X2, X2
	VHADDPS X2, X2, X2
	VHADDPS X2, X2, X2
	VMOVSS X2, 8(DX)
	VZEROUPPER
	RET
