package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// carveRows carves n rows of length k from one backing slice at constant
// stride — the layout the predictors' pooled scratch uses, which enables
// the SIMD kernels.
func carveRows[F Float](rng *rand.Rand, n, k int) ([][]F, []F) {
	backing := make([]F, n*k)
	for i := range backing {
		backing[i] = F(rng.NormFloat64())
	}
	rows := make([][]F, n)
	for i := range rows {
		rows[i] = backing[i*k : (i+1)*k]
	}
	return rows, backing
}

// TestGramBlockTBitIdenticalF64 pins the float64 SIMD contract: the
// transposed broadcast kernel vectorizes across output elements only, so
// every element must be bit-identical to the scalar GramBlock — for
// aligned and ragged block shapes, offset column windows, and strided or
// scattered row layouts (the latter exercising the fallback).
func TestGramBlockTBitIdenticalF64(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	shapes := []struct{ n, k, lo, hi, jlo, jhi int }{
		{16, 8, 0, 16, 0, 16},
		{33, 7, 0, 16, 0, 33},   // ragged k, ragged nj
		{33, 7, 16, 33, 5, 29},  // offset windows, ragged ni
		{8, 1, 0, 8, 0, 8},      // k=1
		{5, 12, 0, 5, 2, 5},     // nj < lane width
		{64, 64, 12, 40, 0, 64}, // production-like k²
	}
	for _, sh := range shapes {
		v, _ := carveRows[float64](rng, sh.n, sh.k)
		vt := make([]float64, sh.n*sh.k)
		TransposeInto(v, vt)
		stride := sh.n
		ref := make([]float64, (sh.hi-sh.lo)*stride)
		got := make([]float64, (sh.hi-sh.lo)*stride)
		GramBlock(v, sh.lo, sh.hi, sh.jlo, sh.jhi, ref, stride)
		GramBlockT(v, vt, sh.lo, sh.hi, sh.jlo, sh.jhi, got, stride)
		for i := 0; i < sh.hi-sh.lo; i++ {
			for j := sh.jlo; j < sh.jhi; j++ {
				if r, g := ref[i*stride+j], got[i*stride+j]; r != g {
					t.Fatalf("shape %+v: element (%d,%d): scalar %v != simd %v", sh, i+sh.lo, j, r, g)
				}
			}
		}
	}

	// Scattered rows (not one strided backing): must fall back and still
	// be bit-identical.
	n, k := 20, 9
	v := make([][]float64, n)
	for i := range v {
		v[i] = make([]float64, k)
		for j := range v[i] {
			v[i][j] = rng.NormFloat64()
		}
	}
	vt := make([]float64, n*k)
	TransposeInto(v, vt)
	ref := make([]float64, n*n)
	got := make([]float64, n*n)
	GramBlock(v, 0, n, 0, n, ref, n)
	GramBlockT(v, vt, 0, n, 0, n, got, n)
	for i := range ref {
		if ref[i] != got[i] {
			t.Fatalf("scattered rows: element %d: scalar %v != simd %v", i, ref[i], got[i])
		}
	}
}

// TestGramBlockTF32ULP bounds the float32 FMA kernel against the scalar
// float32 loop: FMA rounds once per step instead of twice, so elements
// may differ, but only within a few ULP of the k-term dot product.
func TestGramBlockTF32ULP(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, sh := range []struct{ n, k int }{{16, 8}, {40, 64}, {33, 7}} {
		v, _ := carveRows[float32](rng, sh.n, sh.k)
		vt := make([]float32, sh.n*sh.k)
		TransposeInto(v, vt)
		ref := make([]float32, sh.n*sh.n)
		got := make([]float32, sh.n*sh.n)
		GramBlock(v, 0, sh.n, 0, sh.n, ref, sh.n)
		GramBlockT(v, vt, 0, sh.n, 0, sh.n, got, sh.n)
		for i := range ref {
			// Scale-aware bound: |Δ| ≤ k·ε·Σ|a·b| covers the worst-case
			// rounding split between the two evaluation orders.
			var mag float32
			r, c := i/sh.n, i%sh.n
			for x := 0; x < sh.k; x++ {
				m := v[r][x] * v[c][x]
				if m < 0 {
					m = -m
				}
				mag += m
			}
			bound := float64(sh.k) * 1.2e-7 * float64(mag)
			if d := math.Abs(float64(ref[i]) - float64(got[i])); d > bound {
				t.Fatalf("shape %+v: element %d: |%v - %v| = %g exceeds %g",
					sh, i, ref[i], got[i], d, bound)
			}
		}
	}
}

// TestFusedBlockMomentsBitIdenticalF64 pins the tentpole fusion: the
// single-pass standardize+moments+second-moment traversal must reproduce
// the separate reference passes bit-for-bit at float64.
func TestFusedBlockMomentsBitIdenticalF64(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, sh := range []struct{ b, k int }{{12, 16}, {30, 9}, {1, 4}, {7, 1}} {
		v, _ := carveRows[float64](rng, sh.b, sh.k)
		gm, gsd := 0.37, 1.9
		scale := 1 / float64(sh.b)

		// Reference: the unfused sequence the predictors used to run.
		refV := make([][]float64, sh.b)
		for i := range refV {
			refV[i] = append([]float64(nil), v[i]...)
		}
		refMean := make([]float64, sh.b)
		refSd := make([]float64, sh.b)
		refNorm2 := make([]float64, sh.b)
		for i, vec := range refV {
			for j := range vec {
				vec[j] = (vec[j] - gm) / gsd
			}
			var s, s2 float64
			for _, x := range vec {
				s += x
				s2 += x * x
			}
			m := s / float64(sh.k)
			va := s2/float64(sh.k) - m*m
			if va < 0 {
				va = 0
			}
			refMean[i], refSd[i] = m, math.Sqrt(va)
			var n2 float64
			for _, x := range vec {
				n2 += x * x
			}
			refNorm2[i] = n2
		}
		refLower := make([]float64, sh.k*(sh.k+1)/2)
		SecondMomentLower(refV, scale, refLower)

		mean := make([]float64, sh.b)
		sd := make([]float64, sh.b)
		norm2 := make([]float64, sh.b)
		lower := make([]float64, sh.k*(sh.k+1)/2)
		FusedBlockMoments(v, gm, gsd, scale, mean, sd, norm2, lower)

		for i := 0; i < sh.b; i++ {
			for j := 0; j < sh.k; j++ {
				if v[i][j] != refV[i][j] {
					t.Fatalf("b=%d k=%d: standardized v[%d][%d] %v != %v", sh.b, sh.k, i, j, v[i][j], refV[i][j])
				}
			}
			if mean[i] != refMean[i] || sd[i] != refSd[i] || norm2[i] != refNorm2[i] {
				t.Fatalf("b=%d k=%d: moments[%d] (%v,%v,%v) != (%v,%v,%v)",
					sh.b, sh.k, i, mean[i], sd[i], norm2[i], refMean[i], refSd[i], refNorm2[i])
			}
		}
		for i := range lower {
			if lower[i] != refLower[i] {
				t.Fatalf("b=%d k=%d: lower[%d] %v != %v", sh.b, sh.k, i, lower[i], refLower[i])
			}
		}
	}
}

// TestPairReduceF32MatchesReference checks the vectorized pairwise
// reduce against a widened float64 reference within the accumulation
// tolerance of float32 sums, including the j==i self-pair no-op and the
// zero-variance (invSd == 0) gate.
func TestPairReduceF32MatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for _, b := range []int{1, 7, 8, 9, 64, 131} {
		row := make([]float32, b)
		posR := make([]float32, b)
		posC := make([]float32, b)
		norm2 := make([]float32, b)
		mean := make([]float32, b)
		invSd := make([]float32, b)
		for j := 0; j < b; j++ {
			row[j] = float32(rng.NormFloat64())
			posR[j] = float32(j / 4)
			posC[j] = float32(j % 4)
			norm2[j] = float32(rng.Float64()*4 + 0.5)
			mean[j] = float32(rng.NormFloat64() * 0.1)
			invSd[j] = float32(1 / (rng.Float64() + 0.2))
		}
		invSd[b/2] = 0 // zero-variance block: rho must be gated to 0
		const invK2 = 1.0 / 16
		i := b / 3
		row[i] = norm2[i] // self dot ≈ norm2

		sumDs, sumDsDe, sumDsV := PairReduceF32(row, posR, posC, norm2, mean, invSd, i, invK2)

		var refDs, refDsDe, refDsV float64
		for j := 0; j < b; j++ {
			ds := math.Abs(float64(posR[i])-float64(posR[j])) + math.Abs(float64(posC[i])-float64(posC[j]))
			de2 := float64(norm2[i]) + float64(norm2[j]) - 2*float64(row[j])
			if de2 < 0 {
				de2 = 0
			}
			rho := (float64(row[j])*invK2 - float64(mean[i])*float64(mean[j])) *
				float64(invSd[i]) * float64(invSd[j])
			rho = math.Abs(rho)
			if rho > 1 {
				rho = 1
			}
			refDs += ds
			refDsDe += ds * math.Sqrt(de2)
			refDsV += ds * rho
		}
		tol := 1e-4 * (1 + math.Abs(refDsDe) + math.Abs(refDs))
		if math.Abs(sumDs-refDs) > tol || math.Abs(sumDsDe-refDsDe) > tol || math.Abs(sumDsV-refDsV) > tol {
			t.Fatalf("b=%d: (%v,%v,%v) != reference (%v,%v,%v)",
				b, sumDs, sumDsDe, sumDsV, refDs, refDsDe, refDsV)
		}
	}
}

// TestSymEigenValuesIntoMatches pins the pooled eigensolver against the
// allocating one bit-for-bit.
func TestSymEigenValuesIntoMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	for _, n := range []int{1, 4, 16, 64} {
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				v := rng.NormFloat64()
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		want := SymEigenValues(a)
		out := make([]float64, n)
		work := make([]float64, n*n)
		got := SymEigenValuesInto(a, out, work)
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("n=%d: eig[%d] %v != %v", n, i, got[i], want[i])
			}
		}
	}
}

// TestTransposeInto checks the tiled transpose element-wise.
func TestTransposeInto(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	v, _ := carveRows[float64](rng, 37, 41)
	dst := make([]float64, 37*41)
	TransposeInto(v, dst)
	for j := 0; j < 37; j++ {
		for x := 0; x < 41; x++ {
			if dst[x*37+j] != v[j][x] {
				t.Fatalf("dst[%d*37+%d] = %v, want %v", x, j, dst[x*37+j], v[j][x])
			}
		}
	}
}
