package linalg

import (
	"math/rand"
	"testing"
)

func benchSym(n int, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	return randSym(n, rng)
}

func BenchmarkSymEigen64(b *testing.B) {
	a := benchSym(64, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SymEigen(a)
	}
}

func BenchmarkSymEigenValues64(b *testing.B) {
	a := benchSym(64, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SymEigenValues(a)
	}
}

func BenchmarkSymEigenValues16(b *testing.B) {
	a := benchSym(16, 2)
	for i := 0; i < b.N; i++ {
		SymEigenValues(a)
	}
}

func BenchmarkCholeskySolve(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	a := randSPD(32, rng)
	rhs := make([]float64, 32)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, err := Cholesky(a, 0)
		if err != nil {
			b.Fatal(err)
		}
		SolveCholesky(l, rhs)
	}
}

// Gram benchmarks: the naive per-pair scalar loop (the pre-kernel
// predictor hot path) against the register-blocked panel kernel, at the
// shape of a 256×256 buffer with k=8 (B=1024 blocks of k²=64).
func benchGramRows(n, k int) [][]float64 {
	rng := rand.New(rand.NewSource(9))
	v := make([][]float64, n)
	backing := make([]float64, n*k)
	for i := range v {
		v[i] = backing[i*k : (i+1)*k]
		for x := range v[i] {
			v[i][x] = rng.NormFloat64()
		}
	}
	return v
}

func BenchmarkGramNaive1024x64(b *testing.B) {
	v := benchGramRows(1024, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		naiveGram(v)
	}
}

func BenchmarkGramTiled1024x64(b *testing.B) {
	v := benchGramRows(1024, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Gram(v)
	}
}

func BenchmarkGramPanel32x1024x64(b *testing.B) {
	v := benchGramRows(1024, 64)
	out := make([]float64, 32*1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GramPanel(v, 0, 32, out)
	}
}

func BenchmarkSecondMomentLower1024x64(b *testing.B) {
	v := benchGramRows(1024, 64)
	out := make([]float64, 64*65/2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SecondMomentLower(v, 1.0/1024, out)
	}
}

func BenchmarkPCA(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	x := NewMatrix(500, 6)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := PCA(x, 2)
		p.Transform(x)
	}
}
