package linalg

import (
	"math/rand"
	"testing"
)

func benchSym(n int, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	return randSym(n, rng)
}

func BenchmarkSymEigen64(b *testing.B) {
	a := benchSym(64, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SymEigen(a)
	}
}

func BenchmarkSymEigenValues64(b *testing.B) {
	a := benchSym(64, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SymEigenValues(a)
	}
}

func BenchmarkSymEigenValues16(b *testing.B) {
	a := benchSym(16, 2)
	for i := 0; i < b.N; i++ {
		SymEigenValues(a)
	}
}

func BenchmarkCholeskySolve(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	a := randSPD(32, rng)
	rhs := make([]float64, 32)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, err := Cholesky(a, 0)
		if err != nil {
			b.Fatal(err)
		}
		SolveCholesky(l, rhs)
	}
}

func BenchmarkPCA(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	x := NewMatrix(500, 6)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := PCA(x, 2)
		p.Transform(x)
	}
}
