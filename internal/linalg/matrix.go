// Package linalg implements the dense linear algebra required by the
// predictors and the estimation model: symmetric eigendecomposition
// (cyclic Jacobi), singular values, Cholesky factorization and solves,
// principal component analysis and the Mahalanobis distance.
//
// The paper offloads the eigendecomposition and block outer products to a
// GPU; this package is the pure-Go substrate those routines run on, with
// parallelism supplied by internal/parallel at the call sites.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add adds v to element (i, j).
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Row returns row i as a sub-slice of the backing array.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := &Matrix{Rows: m.Rows, Cols: m.Cols, Data: make([]float64, len(m.Data))}
	copy(c.Data, m.Data)
	return c
}

// Scale multiplies every element by s in place and returns m.
func (m *Matrix) Scale(s float64) *Matrix {
	for i := range m.Data {
		m.Data[i] *= s
	}
	return m
}

// AddOuter accumulates m += scale · x xᵀ for a vector x of length m.Rows.
// This is the outer-product kernel the paper offloads to the GPU when
// forming the block covariance Σ = (1/B) Σ_b X^b (X^b)ᵀ.
func (m *Matrix) AddOuter(x []float64, scale float64) {
	n := m.Rows
	if m.Cols != n || len(x) != n {
		panic("linalg: AddOuter shape mismatch")
	}
	for i := 0; i < n; i++ {
		xi := x[i] * scale
		row := m.Row(i)
		for j := 0; j < n; j++ {
			row[j] += xi * x[j]
		}
	}
}

// MulVec returns y = M x.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic("linalg: MulVec shape mismatch")
	}
	y := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// Mul returns the product A·B.
func Mul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic("linalg: Mul shape mismatch")
	}
	c := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		crow := c.Row(i)
		for k := 0; k < a.Cols; k++ {
			aik := arow[k]
			if aik == 0 {
				continue
			}
			brow := b.Row(k)
			for j := 0; j < b.Cols; j++ {
				crow[j] += aik * brow[j]
			}
		}
	}
	return c
}

// Transpose returns Mᵀ.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// ErrNotSPD reports a matrix that is not symmetric positive definite.
var ErrNotSPD = errors.New("linalg: matrix not symmetric positive definite")

// Cholesky computes the lower-triangular L with A = L·Lᵀ for a symmetric
// positive-definite A. The jitter is added to the diagonal before
// factorization to regularize near-singular covariance matrices (pass 0
// for none).
func Cholesky(a *Matrix, jitter float64) (*Matrix, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("linalg: Cholesky of non-square %dx%d", a.Rows, a.Cols)
	}
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := a.At(i, j)
			if i == j {
				s += jitter
			}
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if s <= 0 {
					return nil, ErrNotSPD
				}
				l.Set(i, i, math.Sqrt(s))
			} else {
				l.Set(i, j, s/l.At(j, j))
			}
		}
	}
	return l, nil
}

// SolveCholesky solves A x = b given the Cholesky factor L of A.
func SolveCholesky(l *Matrix, b []float64) []float64 {
	n := l.Rows
	// forward: L y = b
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	// backward: Lᵀ x = y
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x
}

// SolveSPD solves A x = b for symmetric positive-definite A, adding an
// escalating diagonal jitter when the factorization fails numerically.
func SolveSPD(a *Matrix, b []float64) ([]float64, error) {
	jitter := 0.0
	for attempt := 0; attempt < 8; attempt++ {
		l, err := Cholesky(a, jitter)
		if err == nil {
			return SolveCholesky(l, b), nil
		}
		if jitter == 0 {
			jitter = 1e-10 * (1 + traceAbs(a)/float64(a.Rows))
		} else {
			jitter *= 100
		}
	}
	return nil, ErrNotSPD
}

func traceAbs(a *Matrix) float64 {
	var t float64
	n := a.Rows
	if a.Cols < n {
		n = a.Cols
	}
	for i := 0; i < n; i++ {
		t += math.Abs(a.At(i, i))
	}
	return t
}

// Mahalanobis returns the Mahalanobis distance between mean vectors mu1 and
// mu2 under the pooled covariance cov: sqrt((μ1−μ2)ᵀ Σ⁻¹ (μ1−μ2)). It is
// the field-similarity metric of §VI-E.
func Mahalanobis(mu1, mu2 []float64, cov *Matrix) (float64, error) {
	if len(mu1) != len(mu2) || cov.Rows != len(mu1) || cov.Cols != len(mu1) {
		return 0, fmt.Errorf("linalg: Mahalanobis shape mismatch")
	}
	d := make([]float64, len(mu1))
	for i := range d {
		d[i] = mu1[i] - mu2[i]
	}
	x, err := SolveSPD(cov, d)
	if err != nil {
		return 0, err
	}
	var s float64
	for i := range d {
		s += d[i] * x[i]
	}
	if s < 0 {
		s = 0
	}
	return math.Sqrt(s), nil
}
