package linalg

import (
	"math/rand"
	"testing"
)

// naiveGram is the reference per-pair scalar loop: one forward-order dot
// product per (i, j). The tiled kernels must match it bit for bit.
func naiveGram(v [][]float64) *Matrix {
	n := len(v)
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var d float64
			for x := range v[i] {
				d += v[i][x] * v[j][x]
			}
			m.Set(i, j, d)
		}
	}
	return m
}

func randRows(n, k int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	v := make([][]float64, n)
	for i := range v {
		v[i] = make([]float64, k)
		for x := range v[i] {
			// Mix magnitudes so reordered summation would actually
			// change low-order bits and be caught.
			v[i][x] = rng.NormFloat64() * float64(int(1)<<uint(rng.Intn(20)))
		}
	}
	return v
}

// TestGramMatchesNaiveBitIdentical: the tiled symmetric kernel must be
// bit-identical to the naive per-pair loop across shapes, including
// ragged edges where the row count is not a multiple of the register
// block or panel height.
func TestGramMatchesNaiveBitIdentical(t *testing.T) {
	for _, tc := range []struct {
		n, k int
	}{
		{1, 1}, {2, 3}, {3, 4}, {4, 4}, {5, 7}, {7, 16},
		{8, 64}, {9, 64}, {16, 64}, {17, 5}, {33, 9}, {64, 64}, {65, 3},
	} {
		v := randRows(tc.n, tc.k, int64(1000*tc.n+tc.k))
		want := naiveGram(v)
		got := Gram(v)
		for i := 0; i < tc.n; i++ {
			for j := 0; j < tc.n; j++ {
				if got.At(i, j) != want.At(i, j) {
					t.Fatalf("n=%d k=%d: Gram[%d,%d] = %x, naive = %x",
						tc.n, tc.k, i, j, got.At(i, j), want.At(i, j))
				}
			}
		}
	}
}

// TestGramPanelMatchesNaive: arbitrary panels [lo, hi), including
// heights that straddle the 4-row register block raggedly, must
// reproduce the naive rows bit for bit.
func TestGramPanelMatchesNaive(t *testing.T) {
	const n, k = 23, 11
	v := randRows(n, k, 42)
	want := naiveGram(v)
	for _, p := range []struct{ lo, hi int }{
		{0, n}, {0, 1}, {0, 4}, {0, 5}, {3, 10}, {19, 23}, {22, 23}, {5, 5},
	} {
		rows := p.hi - p.lo
		out := make([]float64, rows*n)
		GramPanel(v, p.lo, p.hi, out)
		for r := 0; r < rows; r++ {
			for j := 0; j < n; j++ {
				if out[r*n+j] != want.At(p.lo+r, j) {
					t.Fatalf("panel [%d,%d): out[%d,%d] = %x, naive = %x",
						p.lo, p.hi, r, j, out[r*n+j], want.At(p.lo+r, j))
				}
			}
		}
	}
}

// TestGramSymmetryBitIdentical: the mirrored upper triangle must equal
// the computed lower triangle exactly (the property that makes
// symmetric reuse bit-safe).
func TestGramSymmetryBitIdentical(t *testing.T) {
	v := randRows(31, 13, 7)
	g := Gram(v)
	for i := 0; i < 31; i++ {
		for j := 0; j < 31; j++ {
			if g.At(i, j) != g.At(j, i) {
				t.Fatalf("Gram[%d,%d] != Gram[%d,%d]", i, j, j, i)
			}
		}
	}
}

func TestGramPanelShapePanics(t *testing.T) {
	v := randRows(6, 4, 3)
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("short output", func() {
		GramPanel(v, 0, 6, make([]float64, 6*6-1))
	})
	mustPanic("bad bounds", func() {
		GramPanel(v, 0, 7, make([]float64, 7*6))
	})
	ragged := randRows(6, 4, 3)
	ragged[3] = ragged[3][:3]
	mustPanic("unequal rows", func() {
		GramPanel(ragged, 0, 6, make([]float64, 6*6))
	})
}

// TestSecondMomentLowerMatchesSerialOuter: the deterministic second-
// moment accumulation must be bit-identical to the serial outer-product
// loop the old mutex-guarded accumulator ran under workers=1.
func TestSecondMomentLowerMatchesSerialOuter(t *testing.T) {
	for _, tc := range []struct {
		n, k int
	}{{1, 1}, {5, 4}, {40, 9}, {64, 16}} {
		v := randRows(tc.n, tc.k, int64(77*tc.n+tc.k))
		scale := 1 / float64(tc.n)
		want := make([]float64, tc.k*(tc.k+1)/2)
		for _, vi := range v {
			idx := 0
			for p := 0; p < tc.k; p++ {
				xp := vi[p] * scale
				for q := 0; q <= p; q++ {
					want[idx] += xp * vi[q]
					idx++
				}
			}
		}
		got := make([]float64, len(want))
		// Pre-poison to verify the routine overwrites.
		for i := range got {
			got[i] = 1e300
		}
		SecondMomentLower(v, scale, got)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d k=%d: lower[%d] = %x, serial = %x", tc.n, tc.k, i, got[i], want[i])
			}
		}
	}
}
