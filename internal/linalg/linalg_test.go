package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randSym(n int, rng *rand.Rand) *Matrix {
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	return a
}

func randSPD(n int, rng *rand.Rand) *Matrix {
	// AᵀA + n·I is SPD.
	a := NewMatrix(n, n)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	spd := NewMatrix(n, n)
	for r := 0; r < n; r++ {
		spd.AddOuter(a.Row(r), 1)
	}
	for i := 0; i < n; i++ {
		spd.Add(i, i, float64(n))
	}
	return spd
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 5)
	m.Add(1, 2, 1)
	if m.At(1, 2) != 6 {
		t.Errorf("At = %g", m.At(1, 2))
	}
	if len(m.Row(1)) != 3 || m.Row(1)[2] != 6 {
		t.Error("Row view wrong")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 0 {
		t.Error("Clone aliases")
	}
	m.Scale(2)
	if m.At(1, 2) != 12 {
		t.Error("Scale failed")
	}
}

func TestMulVecAndMul(t *testing.T) {
	a := NewMatrix(2, 3)
	copy(a.Data, []float64{1, 2, 3, 4, 5, 6})
	y := a.MulVec([]float64{1, 0, -1})
	if y[0] != -2 || y[1] != -2 {
		t.Errorf("MulVec = %v", y)
	}
	b := a.Transpose()
	if b.Rows != 3 || b.At(2, 1) != 6 {
		t.Error("Transpose wrong")
	}
	c := Mul(a, b) // 2x2
	// c[0][0] = 1+4+9 = 14
	if c.At(0, 0) != 14 || c.At(1, 1) != 77 || c.At(0, 1) != 32 {
		t.Errorf("Mul = %v", c.Data)
	}
}

func TestAddOuter(t *testing.T) {
	m := NewMatrix(3, 3)
	m.AddOuter([]float64{1, 2, 3}, 2)
	if m.At(1, 2) != 12 || m.At(0, 0) != 2 {
		t.Errorf("AddOuter wrong: %v", m.Data)
	}
}

func TestSymEigenDiagonal(t *testing.T) {
	a := NewMatrix(3, 3)
	a.Set(0, 0, 3)
	a.Set(1, 1, 1)
	a.Set(2, 2, 2)
	vals, vecs := SymEigen(a)
	want := []float64{3, 2, 1}
	for i := range want {
		if math.Abs(vals[i]-want[i]) > 1e-12 {
			t.Fatalf("vals = %v", vals)
		}
	}
	// Eigenvectors must be signed unit axis vectors.
	for c := 0; c < 3; c++ {
		var norm float64
		for r := 0; r < 3; r++ {
			norm += vecs.At(r, c) * vecs.At(r, c)
		}
		if math.Abs(norm-1) > 1e-9 {
			t.Errorf("column %d norm² = %g", c, norm)
		}
	}
}

// TestSymEigenReconstruction: A·v_i ≈ λ_i·v_i and Σλ = tr(A).
func TestSymEigenReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		n := rng.Intn(12) + 2
		a := randSym(n, rng)
		vals, vecs := SymEigen(a)
		var trace, sum float64
		for i := 0; i < n; i++ {
			trace += a.At(i, i)
			sum += vals[i]
		}
		if math.Abs(trace-sum) > 1e-8*(1+math.Abs(trace)) {
			t.Fatalf("trace %g != eigenvalue sum %g", trace, sum)
		}
		for c := 0; c < n; c++ {
			v := make([]float64, n)
			for r := 0; r < n; r++ {
				v[r] = vecs.At(r, c)
			}
			av := a.MulVec(v)
			for r := 0; r < n; r++ {
				if math.Abs(av[r]-vals[c]*v[r]) > 1e-6*(1+math.Abs(vals[c])) {
					t.Fatalf("trial %d: A·v != λ·v at (%d,%d): %g vs %g", trial, r, c, av[r], vals[c]*v[r])
				}
			}
		}
		// Descending order.
		for i := 1; i < n; i++ {
			if vals[i] > vals[i-1]+1e-12 {
				t.Fatalf("eigenvalues not sorted: %v", vals)
			}
		}
	}
}

func TestSymEigenValuesMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := randSym(8, rng)
	full, _ := SymEigen(a)
	only := SymEigenValues(a)
	for i := range full {
		if math.Abs(full[i]-only[i]) > 1e-9 {
			t.Fatalf("values differ at %d: %g vs %g", i, full[i], only[i])
		}
	}
}

func TestSingularValues(t *testing.T) {
	// Known: diag(3, 2) has singular values 3, 2.
	a := NewMatrix(2, 2)
	a.Set(0, 0, 3)
	a.Set(1, 1, -2)
	sv := SingularValues(a)
	if math.Abs(sv[0]-3) > 1e-9 || math.Abs(sv[1]-2) > 1e-9 {
		t.Errorf("singular values = %v", sv)
	}
	// Tall and wide shapes agree with Frobenius identity Σσ² = ‖A‖²_F.
	rng := rand.New(rand.NewSource(11))
	for _, sh := range [][2]int{{5, 3}, {3, 5}} {
		m := NewMatrix(sh[0], sh[1])
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64()
		}
		var frob2 float64
		for _, v := range m.Data {
			frob2 += v * v
		}
		var sum2 float64
		for _, s := range SingularValues(m) {
			sum2 += s * s
		}
		if math.Abs(frob2-sum2) > 1e-8*(1+frob2) {
			t.Errorf("%dx%d: Σσ² = %g, ‖A‖²_F = %g", sh[0], sh[1], sum2, frob2)
		}
	}
}

func TestCholeskySolve(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 10; trial++ {
		n := rng.Intn(10) + 2
		a := randSPD(n, rng)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		b := a.MulVec(x)
		l, err := Cholesky(a, 0)
		if err != nil {
			t.Fatal(err)
		}
		got := SolveCholesky(l, b)
		for i := range x {
			if math.Abs(got[i]-x[i]) > 1e-6*(1+math.Abs(x[i])) {
				t.Fatalf("solve mismatch at %d: %g vs %g", i, got[i], x[i])
			}
		}
		// L·Lᵀ reconstructs A.
		lt := l.Transpose()
		rec := Mul(l, lt)
		for i := range a.Data {
			if math.Abs(rec.Data[i]-a.Data[i]) > 1e-8*(1+math.Abs(a.Data[i])) {
				t.Fatal("L·Lᵀ != A")
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(1, 1, -1)
	if _, err := Cholesky(a, 0); err == nil {
		t.Error("indefinite matrix accepted")
	}
	b := NewMatrix(2, 3)
	if _, err := Cholesky(b, 0); err == nil {
		t.Error("non-square accepted")
	}
}

func TestSolveSPDRecoversWithJitter(t *testing.T) {
	// Singular matrix: SolveSPD should still return something via jitter.
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 1)
	if _, err := SolveSPD(a, []float64{1, 1}); err != nil {
		t.Errorf("jittered solve failed: %v", err)
	}
}

func TestMahalanobis(t *testing.T) {
	cov := NewMatrix(2, 2)
	cov.Set(0, 0, 4)
	cov.Set(1, 1, 1)
	d, err := Mahalanobis([]float64{2, 0}, []float64{0, 0}, cov)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-1) > 1e-9 { // 2/σ=2 → 1
		t.Errorf("Mahalanobis = %g, want 1", d)
	}
	// Self distance zero; symmetry.
	d0, _ := Mahalanobis([]float64{3, 4}, []float64{3, 4}, cov)
	if d0 != 0 {
		t.Errorf("self distance = %g", d0)
	}
	d1, _ := Mahalanobis([]float64{1, 2}, []float64{3, 4}, cov)
	d2, _ := Mahalanobis([]float64{3, 4}, []float64{1, 2}, cov)
	if math.Abs(d1-d2) > 1e-12 {
		t.Error("Mahalanobis not symmetric")
	}
	if _, err := Mahalanobis([]float64{1}, []float64{1, 2}, cov); err == nil {
		t.Error("shape mismatch accepted")
	}
}

func TestPCA(t *testing.T) {
	// Points on a line y = 2x: first component explains everything.
	rng := rand.New(rand.NewSource(13))
	n := 200
	x := NewMatrix(n, 2)
	for i := 0; i < n; i++ {
		v := rng.NormFloat64()
		x.Set(i, 0, v)
		x.Set(i, 1, 2*v)
	}
	p := PCA(x, 2)
	if p.Variance[0] <= 0 || p.Variance[1] > 1e-9*p.Variance[0] {
		t.Errorf("variances = %v, want rank-1 structure", p.Variance)
	}
	// Direction ∝ (1,2)/√5.
	dir := p.Components.Row(0)
	ratio := dir[1] / dir[0]
	if math.Abs(math.Abs(ratio)-2) > 1e-6 {
		t.Errorf("component direction ratio = %g", ratio)
	}
	scores := p.Transform(x)
	if scores.Rows != n || scores.Cols != 2 {
		t.Fatalf("scores shape %dx%d", scores.Rows, scores.Cols)
	}
	// Scores on PC2 are ~0.
	for i := 0; i < n; i++ {
		if math.Abs(scores.At(i, 1)) > 1e-6 {
			t.Fatalf("PC2 score %g", scores.At(i, 1))
		}
	}
}

// TestEigenOrthogonality: eigenvector matrix is orthogonal (VᵀV = I).
func TestEigenOrthogonality(t *testing.T) {
	prop := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%10) + 2
		a := randSym(n, rng)
		_, v := SymEigen(a)
		vt := v.Transpose()
		id := Mul(vt, v)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(id.At(i, j)-want) > 1e-7 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
