package linalg

// Float constrains the generic kernels to the two element types the
// pipeline moves end to end: float64 (the reference precision) and
// float32 (the sensor-data precision that halves memory bandwidth).
//
// Precision contract: regardless of F, every *reduction* a kernel
// performs — moments, norms, triangle accumulations — runs in float64.
// Only the stored elements and the Gram dot products themselves narrow
// to F, so the float32 pipeline's divergence from float64 is bounded by
// the ULP of the standardized values and their k²-term dot products,
// not by accumulated drift over B blocks.
type Float interface {
	~float32 | ~float64
}
