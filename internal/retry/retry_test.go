package retry

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"github.com/crestlab/crest/internal/crerr"
)

// newTestRNG returns the first uniform draw of the policy's jitter
// stream for a given seed.
func newTestRNG(seed int64) float64 {
	return 2*rand.New(rand.NewSource(seed)).Float64() - 1
}

// fakeSleep records requested waits without actually sleeping.
func fakeSleep(waits *[]time.Duration) func(context.Context, time.Duration) error {
	return func(ctx context.Context, d time.Duration) error {
		*waits = append(*waits, d)
		return ctx.Err()
	}
}

func TestDoSucceedsAfterTransientFailures(t *testing.T) {
	var waits []time.Duration
	p := Policy{MaxAttempts: 5, BaseDelay: 10 * time.Millisecond, Seed: 1, Sleep: fakeSleep(&waits)}
	calls := 0
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 || len(waits) != 2 {
		t.Fatalf("calls=%d waits=%v", calls, waits)
	}
}

func TestDoBacksOffExponentiallyWithJitterBounds(t *testing.T) {
	var waits []time.Duration
	p := Policy{MaxAttempts: 5, BaseDelay: 100 * time.Millisecond, MaxDelay: time.Hour,
		Multiplier: 2, Jitter: 0.2, Seed: 42, Sleep: fakeSleep(&waits)}
	fail := errors.New("always")
	err := p.Do(context.Background(), func(context.Context) error { return fail })
	if !errors.Is(err, fail) {
		t.Fatalf("exhaustion error lost the cause: %v", err)
	}
	if len(waits) != 4 {
		t.Fatalf("want 4 sleeps, got %v", waits)
	}
	base := 100 * time.Millisecond
	for i, w := range waits {
		nominal := time.Duration(float64(base) * pow(2, i))
		lo := time.Duration(float64(nominal) * 0.8)
		hi := time.Duration(float64(nominal) * 1.2)
		if w < lo || w > hi {
			t.Errorf("sleep %d = %s outside [%s, %s]", i, w, lo, hi)
		}
	}
}

func pow(b float64, e int) float64 {
	out := 1.0
	for i := 0; i < e; i++ {
		out *= b
	}
	return out
}

func TestDoHonorsRetryAfterHint(t *testing.T) {
	var waits []time.Duration
	p := Policy{MaxAttempts: 3, BaseDelay: 10 * time.Millisecond, MaxDelay: time.Hour,
		Jitter: -1, Seed: 1, Sleep: fakeSleep(&waits)}
	hint := 2 * time.Second
	calls := 0
	p.Do(context.Background(), func(context.Context) error {
		calls++
		return WithRetryAfter(errors.New("shed"), hint)
	})
	if len(waits) != 2 {
		t.Fatalf("waits=%v", waits)
	}
	for i, w := range waits {
		if w != hint {
			t.Errorf("sleep %d = %s, want hint %s", i, w, hint)
		}
	}
}

// TestJitterNeverExceedsMaxDelay is the regression test for the
// jitter-after-cap bug: jitter used to be applied after the MaxDelay cap,
// so with Jitter=0.2 the actual wait could exceed MaxDelay by up to 20%.
// BaseDelay equals MaxDelay, so every pre-jitter wait sits exactly at the
// cap; a seed whose first uniform draw is near 1 drives the jittered wait
// as far above the cap as the bug allows.
func TestJitterNeverExceedsMaxDelay(t *testing.T) {
	// Find a seed whose first draw u = 2·Float64()−1 is close to +1, so
	// the pre-fix code would produce wait ≈ 1.2·MaxDelay on the first
	// sleep. Scanning keeps the test independent of math/rand internals.
	seed := int64(0)
	for s := int64(1); s < 10_000; s++ {
		if newTestRNG(s) > 0.95 {
			seed = s
			break
		}
	}
	if seed == 0 {
		t.Fatal("no seed with a near-1 first draw in range")
	}
	const maxDelay = 100 * time.Millisecond
	var waits []time.Duration
	p := Policy{MaxAttempts: 6, BaseDelay: maxDelay, MaxDelay: maxDelay,
		Jitter: 0.2, Seed: seed, Sleep: fakeSleep(&waits)}
	p.Do(context.Background(), func(context.Context) error { return errors.New("always") })
	if len(waits) != 5 {
		t.Fatalf("want 5 sleeps, got %v", waits)
	}
	for i, w := range waits {
		if w > maxDelay {
			t.Errorf("sleep %d = %s exceeds MaxDelay %s: jitter escaped the cap", i, w, maxDelay)
		}
	}
}

// TestHintLargerThanMaxDelayIsClamped pins the retry-client interplay: a
// server Retry-After hint larger than MaxDelay must still be clamped by
// Policy.Do — the hint raises the floor of the next wait, it does not
// override the policy's ceiling.
func TestHintLargerThanMaxDelayIsClamped(t *testing.T) {
	const maxDelay = 50 * time.Millisecond
	var waits []time.Duration
	p := Policy{MaxAttempts: 3, BaseDelay: 10 * time.Millisecond, MaxDelay: maxDelay,
		Jitter: -1, Seed: 1, Sleep: fakeSleep(&waits)}
	p.Do(context.Background(), func(context.Context) error {
		return WithRetryAfter(errors.New("shed"), 10*time.Second)
	})
	if len(waits) != 2 {
		t.Fatalf("waits=%v", waits)
	}
	for i, w := range waits {
		if w != maxDelay {
			t.Errorf("sleep %d = %s, want clamp to MaxDelay %s", i, w, maxDelay)
		}
	}
}

// TestJitteredHintStaysUnderMaxDelay combines both: an over-cap hint plus
// positive jitter — the post-jitter re-cap must still hold.
func TestJitteredHintStaysUnderMaxDelay(t *testing.T) {
	const maxDelay = 50 * time.Millisecond
	for seed := int64(1); seed <= 64; seed++ {
		var waits []time.Duration
		p := Policy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: maxDelay,
			Jitter: 0.2, Seed: seed, Sleep: fakeSleep(&waits)}
		p.Do(context.Background(), func(context.Context) error {
			return WithRetryAfter(errors.New("shed"), time.Minute)
		})
		for i, w := range waits {
			if w > maxDelay {
				t.Fatalf("seed %d sleep %d = %s exceeds MaxDelay %s", seed, i, w, maxDelay)
			}
		}
	}
}

func TestDoStopsOnPermanent(t *testing.T) {
	p := Policy{MaxAttempts: 5, Seed: 1, Sleep: func(context.Context, time.Duration) error { return nil }}
	cause := errors.New("bad request")
	calls := 0
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		return Permanent(cause)
	})
	if calls != 1 {
		t.Fatalf("permanent error retried %d times", calls)
	}
	if !errors.Is(err, cause) {
		t.Fatalf("cause lost: %v", err)
	}
}

func TestDoStopsOnContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := Policy{MaxAttempts: 100, BaseDelay: time.Millisecond, Seed: 1}
	calls := 0
	err := p.Do(ctx, func(context.Context) error {
		calls++
		if calls == 2 {
			cancel()
		}
		return errors.New("transient")
	})
	if !errors.Is(err, crerr.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("want canceled classification, got %v", err)
	}
	if calls > 3 {
		t.Fatalf("kept retrying after cancel: %d calls", calls)
	}
}

func TestRetryAfterHintExtraction(t *testing.T) {
	if _, ok := RetryAfterHint(errors.New("plain")); ok {
		t.Error("hint found on plain error")
	}
	err := WithRetryAfter(crerr.ErrOverloaded, 3*time.Second)
	if d, ok := RetryAfterHint(err); !ok || d != 3*time.Second {
		t.Errorf("hint = %v, %v", d, ok)
	}
	if !errors.Is(err, crerr.ErrOverloaded) {
		t.Error("wrapped sentinel lost")
	}
	if Permanent(nil) != nil || WithRetryAfter(nil, time.Second) != nil {
		t.Error("nil error not preserved")
	}
}
