package retry

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/crestlab/crest/internal/crerr"
)

// fakeSleep records requested waits without actually sleeping.
func fakeSleep(waits *[]time.Duration) func(context.Context, time.Duration) error {
	return func(ctx context.Context, d time.Duration) error {
		*waits = append(*waits, d)
		return ctx.Err()
	}
}

func TestDoSucceedsAfterTransientFailures(t *testing.T) {
	var waits []time.Duration
	p := Policy{MaxAttempts: 5, BaseDelay: 10 * time.Millisecond, Seed: 1, Sleep: fakeSleep(&waits)}
	calls := 0
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 || len(waits) != 2 {
		t.Fatalf("calls=%d waits=%v", calls, waits)
	}
}

func TestDoBacksOffExponentiallyWithJitterBounds(t *testing.T) {
	var waits []time.Duration
	p := Policy{MaxAttempts: 5, BaseDelay: 100 * time.Millisecond, MaxDelay: time.Hour,
		Multiplier: 2, Jitter: 0.2, Seed: 42, Sleep: fakeSleep(&waits)}
	fail := errors.New("always")
	err := p.Do(context.Background(), func(context.Context) error { return fail })
	if !errors.Is(err, fail) {
		t.Fatalf("exhaustion error lost the cause: %v", err)
	}
	if len(waits) != 4 {
		t.Fatalf("want 4 sleeps, got %v", waits)
	}
	base := 100 * time.Millisecond
	for i, w := range waits {
		nominal := time.Duration(float64(base) * pow(2, i))
		lo := time.Duration(float64(nominal) * 0.8)
		hi := time.Duration(float64(nominal) * 1.2)
		if w < lo || w > hi {
			t.Errorf("sleep %d = %s outside [%s, %s]", i, w, lo, hi)
		}
	}
}

func pow(b float64, e int) float64 {
	out := 1.0
	for i := 0; i < e; i++ {
		out *= b
	}
	return out
}

func TestDoHonorsRetryAfterHint(t *testing.T) {
	var waits []time.Duration
	p := Policy{MaxAttempts: 3, BaseDelay: 10 * time.Millisecond, MaxDelay: time.Hour,
		Jitter: -1, Seed: 1, Sleep: fakeSleep(&waits)}
	hint := 2 * time.Second
	calls := 0
	p.Do(context.Background(), func(context.Context) error {
		calls++
		return WithRetryAfter(errors.New("shed"), hint)
	})
	if len(waits) != 2 {
		t.Fatalf("waits=%v", waits)
	}
	for i, w := range waits {
		if w != hint {
			t.Errorf("sleep %d = %s, want hint %s", i, w, hint)
		}
	}
}

func TestDoStopsOnPermanent(t *testing.T) {
	p := Policy{MaxAttempts: 5, Seed: 1, Sleep: func(context.Context, time.Duration) error { return nil }}
	cause := errors.New("bad request")
	calls := 0
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		return Permanent(cause)
	})
	if calls != 1 {
		t.Fatalf("permanent error retried %d times", calls)
	}
	if !errors.Is(err, cause) {
		t.Fatalf("cause lost: %v", err)
	}
}

func TestDoStopsOnContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := Policy{MaxAttempts: 100, BaseDelay: time.Millisecond, Seed: 1}
	calls := 0
	err := p.Do(ctx, func(context.Context) error {
		calls++
		if calls == 2 {
			cancel()
		}
		return errors.New("transient")
	})
	if !errors.Is(err, crerr.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("want canceled classification, got %v", err)
	}
	if calls > 3 {
		t.Fatalf("kept retrying after cancel: %d calls", calls)
	}
}

func TestRetryAfterHintExtraction(t *testing.T) {
	if _, ok := RetryAfterHint(errors.New("plain")); ok {
		t.Error("hint found on plain error")
	}
	err := WithRetryAfter(crerr.ErrOverloaded, 3*time.Second)
	if d, ok := RetryAfterHint(err); !ok || d != 3*time.Second {
		t.Errorf("hint = %v, %v", d, ok)
	}
	if !errors.Is(err, crerr.ErrOverloaded) {
		t.Error("wrapped sentinel lost")
	}
	if Permanent(nil) != nil || WithRetryAfter(nil, time.Second) != nil {
		t.Error("nil error not preserved")
	}
}
