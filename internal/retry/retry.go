// Package retry is the client-side half of the serving layer's overload
// contract: a jittered exponential-backoff loop that honors server
// Retry-After hints, so clients shed by admission control (503 +
// Retry-After) back off instead of hammering an overloaded server into
// collapse. It is also reusable for transient in-process faults —
// featcache failures are not cached, and compressor faults are isolated
// per buffer, so both are natural retry candidates.
//
// Classification: every error is retried by default except those marked
// Permanent and context cancellation of the loop's own context. A server
// (or any failing layer) can attach a minimum wait with WithRetryAfter;
// the next backoff delay is then at least that hint.
package retry

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"github.com/crestlab/crest/internal/crerr"
)

// Policy configures the backoff loop. The zero value is usable and picks
// the defaults documented per field.
type Policy struct {
	// MaxAttempts bounds the total number of tries (default 4).
	MaxAttempts int
	// BaseDelay is the first backoff delay (default 100ms).
	BaseDelay time.Duration
	// MaxDelay caps every delay, hint or not (default 5s).
	MaxDelay time.Duration
	// Multiplier grows the delay between attempts (default 2).
	Multiplier float64
	// Jitter is the symmetric relative jitter applied to each delay:
	// d → d·(1 + Jitter·u), u uniform in [−1, 1) (default 0.2; negative
	// disables). Jitter decorrelates clients that shed at the same
	// instant, so they do not retry in lockstep.
	Jitter float64
	// Seed drives the deterministic jitter stream (tests); 0 seeds from
	// the clock.
	Seed int64
	// Sleep is the context-aware delay function, injectable for tests;
	// nil selects a timer-based default.
	Sleep func(ctx context.Context, d time.Duration) error
}

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 100 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 5 * time.Second
	}
	if p.Multiplier <= 1 {
		p.Multiplier = 2
	}
	if p.Jitter == 0 {
		p.Jitter = 0.2
	}
	if p.Seed == 0 {
		p.Seed = time.Now().UnixNano()
	}
	if p.Sleep == nil {
		p.Sleep = sleep
	}
	return p
}

func sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Do runs op until it succeeds, returns a permanent error, the context is
// done, or MaxAttempts is exhausted. The returned error is the last
// attempt's, annotated with the attempt count; when the loop stops on
// cancellation it matches crerr.ErrCanceled (and the context sentinel).
func (p Policy) Do(ctx context.Context, op func(ctx context.Context) error) error {
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed))
	delay := p.BaseDelay
	var last error
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return crerr.Canceled(err)
		}
		last = op(ctx)
		if last == nil {
			return nil
		}
		if errors.Is(last, context.Canceled) || errors.Is(last, context.DeadlineExceeded) {
			if ctx.Err() != nil {
				// The loop's own context died; do not mask it as a
				// retryable op failure.
				return crerr.Canceled(ctx.Err())
			}
		}
		var pe *permanentError
		if errors.As(last, &pe) {
			return fmt.Errorf("retry: permanent after %d attempt(s): %w", attempt, pe.err)
		}
		if attempt >= p.MaxAttempts {
			return fmt.Errorf("retry: %d attempt(s) exhausted: %w", attempt, last)
		}
		wait := delay
		if hint, ok := RetryAfterHint(last); ok && hint > wait {
			wait = hint
		}
		if wait > p.MaxDelay {
			wait = p.MaxDelay
		}
		if p.Jitter > 0 {
			u := 2*rng.Float64() - 1
			wait = time.Duration(float64(wait) * (1 + p.Jitter*u))
		}
		// Re-cap after jitter: upward jitter on an already-capped delay
		// would otherwise exceed MaxDelay by up to the jitter fraction,
		// violating the "MaxDelay caps every delay, hint or not" contract.
		if wait > p.MaxDelay {
			wait = p.MaxDelay
		}
		if err := p.Sleep(ctx, wait); err != nil {
			return crerr.Canceled(err)
		}
		delay = time.Duration(float64(delay) * p.Multiplier)
		if delay > p.MaxDelay {
			delay = p.MaxDelay
		}
	}
}

// permanentError marks an error the loop must not retry.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return "permanent: " + e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent marks err as non-retryable: Do stops immediately and returns
// it. A nil err stays nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err was marked non-retryable by Permanent
// anywhere in its chain.
func IsPermanent(err error) bool {
	var pe *permanentError
	return errors.As(err, &pe)
}

// retryAfterError carries a server-issued minimum wait.
type retryAfterError struct {
	err  error
	wait time.Duration
}

func (e *retryAfterError) Error() string {
	return fmt.Sprintf("%v (retry after %s)", e.err, e.wait)
}
func (e *retryAfterError) Unwrap() error { return e.err }

// WithRetryAfter attaches a minimum backoff wait to err — the typed form
// of an HTTP Retry-After header, whether from an overload 503 or a
// per-tenant quota 429. A nil err stays nil.
func WithRetryAfter(err error, wait time.Duration) error {
	if err == nil {
		return nil
	}
	return &retryAfterError{err: err, wait: wait}
}

// RetryAfterHint extracts the minimum wait attached by WithRetryAfter
// anywhere in err's chain.
func RetryAfterHint(err error) (time.Duration, bool) {
	var ra *retryAfterError
	if errors.As(err, &ra) {
		return ra.wait, true
	}
	return 0, false
}
