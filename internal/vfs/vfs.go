// Package vfs is the narrow filesystem seam of the durability layer: the
// handful of operations a crash-safe snapshot write needs (create a temp
// file, write, fsync, rename into place, fsync the directory) expressed
// as an interface, so the chaos harness can interpose short writes,
// rename failures and sync errors without touching the real disk code.
//
// Production code uses OS, a passthrough to package os. The abstraction
// exists for one reason only — deterministic fault injection — and is
// deliberately minimal: anything not needed by snapshot persistence is
// left out.
package vfs

import (
	"io"
	"os"
	"path/filepath"
)

// File is the writable-file surface an atomic write needs.
type File interface {
	io.Writer
	// Sync flushes the file's data to stable storage.
	Sync() error
	// Close closes the file.
	Close() error
	// Name returns the file's path.
	Name() string
}

// FS is the filesystem surface of snapshot persistence.
type FS interface {
	// CreateTemp creates a new unique temp file in dir (pattern as in
	// os.CreateTemp).
	CreateTemp(dir, pattern string) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// ReadFile reads a whole file.
	ReadFile(name string) ([]byte, error)
	// ReadDir lists a directory.
	ReadDir(name string) ([]os.DirEntry, error)
	// SyncDir fsyncs a directory so a completed rename survives a crash.
	SyncDir(name string) error
}

// OS is the production FS: a passthrough to package os.
var OS FS = osFS{}

type osFS struct{}

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }
func (osFS) ReadDir(name string) ([]os.DirEntry, error) {
	return os.ReadDir(name)
}

func (osFS) SyncDir(name string) error {
	d, err := os.Open(name)
	if err != nil {
		return err
	}
	// Directory fsync is advisory on some platforms; a sync error still
	// means the rename reached the directory, so surface it to the caller
	// and let policy decide.
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// WriteFileAtomic writes data to path with crash safety: the bytes land
// in a temp file in the same directory, are fsynced, and are renamed over
// path only after the sync succeeds, so a reader never observes a partial
// file under the final name and a crash leaves either the old content or
// the new — never a torn mix. The directory is fsynced after the rename
// so the new name itself is durable. On any failure the temp file is
// removed.
func WriteFileAtomic(fsys FS, path string, data []byte) (err error) {
	dir := filepath.Dir(path)
	f, err := fsys.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			fsys.Remove(tmp) // best effort; the error being returned wins
		}
	}()
	n, err := f.Write(data)
	if err == nil && n < len(data) {
		err = io.ErrShortWrite
	}
	if err != nil {
		f.Close()
		return err
	}
	if err = f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	if err = fsys.Rename(tmp, path); err != nil {
		return err
	}
	return fsys.SyncDir(dir)
}
