package vfs

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileAtomicRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "payload.bin")
	want := []byte("hello, durable world")
	if err := WriteFileAtomic(OS, path, want); err != nil {
		t.Fatal(err)
	}
	got, err := OS.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("read back %q, want %q", got, want)
	}
	// Overwrite: readers must see either old or new, and after the call
	// returns, the new.
	want2 := []byte("second generation")
	if err := WriteFileAtomic(OS, path, want2); err != nil {
		t.Fatal(err)
	}
	got, _ = OS.ReadFile(path)
	if !bytes.Equal(got, want2) {
		t.Fatalf("read back %q, want %q", got, want2)
	}
	// No temp litter left behind.
	entries, err := OS.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("temp file %s left behind", e.Name())
		}
	}
}

// failFS wraps OS and fails one operation, for the cleanup contract.
type failFS struct {
	FS
	failRename bool
}

func (f failFS) Rename(o, n string) error {
	if f.failRename {
		return errors.New("injected rename failure")
	}
	return f.FS.Rename(o, n)
}

func TestWriteFileAtomicRenameFailureCleansUp(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "payload.bin")
	err := WriteFileAtomic(failFS{FS: OS, failRename: true}, path, []byte("doomed"))
	if err == nil {
		t.Fatal("rename failure not surfaced")
	}
	if _, statErr := os.Stat(path); !errors.Is(statErr, os.ErrNotExist) {
		t.Errorf("target exists after failed rename: %v", statErr)
	}
	entries, _ := OS.ReadDir(dir)
	if len(entries) != 0 {
		t.Errorf("temp litter after failed rename: %v", entries)
	}
}
