// Package fieldsim implements the cheaper-to-train machinery of §VI-E:
// fields are summarized by the distribution of the relative singular-value
// decay of their block covariance across 2D slices, pairwise dissimilarity
// is the Mahalanobis distance between those distributions (Table III),
// similar fields are explored first when assembling training data
// (Fig. 5), and a minimal covering training set is selected by exact
// set cover for realistic field counts with a greedy fallback (the paper
// uses a SAT solver with a greedy 2-approximation fallback).
package fieldsim

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"sort"

	"github.com/crestlab/crest/internal/grid"
	"github.com/crestlab/crest/internal/linalg"
	"github.com/crestlab/crest/internal/predictors"
)

// ProfileDim is the number of leading singular-value decay components kept
// as the field signature.
const ProfileDim = 8

// Profiles returns the per-slice decay signatures of one field: each row
// is the first ProfileDim entries of the normalized singular-value decay
// of the slice's block covariance.
func Profiles(field *grid.Field, cfg predictors.Config) ([][]float64, error) {
	out := make([][]float64, 0, len(field.Buffers))
	for _, b := range field.Buffers {
		df, err := predictors.ComputeDataset(b, cfg)
		if err != nil {
			return nil, fmt.Errorf("fieldsim: %s/%s: %w", field.Dataset, field.Name, err)
		}
		row := make([]float64, ProfileDim)
		for i := 0; i < ProfileDim && i < len(df.SingularProfile); i++ {
			row[i] = df.SingularProfile[i]
		}
		out = append(out, row)
	}
	return out, nil
}

func meanOf(rows [][]float64) []float64 {
	d := len(rows[0])
	mu := make([]float64, d)
	for _, r := range rows {
		for j, v := range r {
			mu[j] += v
		}
	}
	for j := range mu {
		mu[j] /= float64(len(rows))
	}
	return mu
}

// pooledCov accumulates the within-group covariance of two profile sets.
func pooledCov(a, b [][]float64) *linalg.Matrix {
	d := len(a[0])
	cov := linalg.NewMatrix(d, d)
	add := func(rows [][]float64) {
		mu := meanOf(rows)
		diff := make([]float64, d)
		for _, r := range rows {
			for j := range diff {
				diff[j] = r[j] - mu[j]
			}
			cov.AddOuter(diff, 1)
		}
	}
	add(a)
	add(b)
	n := len(a) + len(b) - 2
	if n < 1 {
		n = 1
	}
	cov.Scale(1 / float64(n))
	// Regularize: profile components can be nearly collinear.
	for i := 0; i < d; i++ {
		cov.Add(i, i, 1e-8)
	}
	return cov
}

// Distance returns the Mahalanobis distance between the decay-profile
// distributions of two profile sets.
func Distance(a, b [][]float64) (float64, error) {
	if len(a) == 0 || len(b) == 0 {
		return 0, errors.New("fieldsim: empty profile set")
	}
	cov := pooledCov(a, b)
	return linalg.Mahalanobis(meanOf(a), meanOf(b), cov)
}

// Matrix is a labelled symmetric dissimilarity matrix (Table III).
type Matrix struct {
	Fields []string
	D      [][]float64
}

// SimilarityMatrix computes all pairwise field distances. The diagonal is
// the self-distance between the even and odd slices of the same field — a
// nonzero estimator baseline exactly as Table III's diagonal shows.
func SimilarityMatrix(fields []*grid.Field, cfg predictors.Config) (*Matrix, error) {
	n := len(fields)
	profiles := make([][][]float64, n)
	for i, f := range fields {
		p, err := Profiles(f, cfg)
		if err != nil {
			return nil, err
		}
		if len(p) < 4 {
			return nil, fmt.Errorf("fieldsim: field %s has %d slices, need ≥ 4", f.Name, len(p))
		}
		profiles[i] = p
	}
	m := &Matrix{Fields: make([]string, n), D: make([][]float64, n)}
	for i, f := range fields {
		m.Fields[i] = f.Name
		m.D[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		even, odd := splitHalves(profiles[i])
		d, err := Distance(even, odd)
		if err != nil {
			return nil, err
		}
		m.D[i][i] = d
		for j := i + 1; j < n; j++ {
			d, err := Distance(profiles[i], profiles[j])
			if err != nil {
				return nil, err
			}
			m.D[i][j] = d
			m.D[j][i] = d
		}
	}
	return m, nil
}

func splitHalves(p [][]float64) (even, odd [][]float64) {
	for i, r := range p {
		if i%2 == 0 {
			even = append(even, r)
		} else {
			odd = append(odd, r)
		}
	}
	return even, odd
}

// Order returns the indices of all fields except target, sorted by
// ascending distance to target — the exploration order of Fig. 5.
func (m *Matrix) Order(target int) []int {
	idx := make([]int, 0, len(m.Fields)-1)
	for i := range m.Fields {
		if i != target {
			idx = append(idx, i)
		}
	}
	sort.Slice(idx, func(a, b int) bool {
		da, db := m.D[target][idx[a]], m.D[target][idx[b]]
		if da != db {
			return da < db
		}
		return idx[a] < idx[b] // deterministic tie-break
	})
	return idx
}

// FieldIndex returns the index of a named field, or -1.
func (m *Matrix) FieldIndex(name string) int {
	for i, f := range m.Fields {
		if f == name {
			return i
		}
	}
	return -1
}

// Covers builds the coverage relation of §VI-E: training set member i
// covers field j when d(i, j) ≤ radius; every field covers itself.
func (m *Matrix) Covers(radius float64) [][]bool {
	n := len(m.Fields)
	cov := make([][]bool, n)
	for i := range cov {
		cov[i] = make([]bool, n)
		for j := range cov[i] {
			cov[i][j] = i == j || m.D[i][j] <= radius
		}
	}
	return cov
}

// ErrNoCover reports an infeasible covering instance.
var ErrNoCover = errors.New("fieldsim: no covering set exists")

// MinimalCover solves the minimal-training-set problem exactly for up to
// 20 fields (bitmask enumeration ordered by set size — the role the
// paper's SAT solver plays) and greedily beyond that.
func MinimalCover(covers [][]bool, required []int) ([]int, error) {
	n := len(covers)
	if n == 0 {
		return nil, nil
	}
	if len(required) == 0 {
		required = make([]int, n)
		for i := range required {
			required[i] = i
		}
	}
	if n <= 20 {
		return exactCover(covers, required)
	}
	return GreedyCover(covers, required)
}

// exactCover enumerates candidate sets in order of increasing cardinality.
func exactCover(covers [][]bool, required []int) ([]int, error) {
	n := len(covers)
	var need uint32
	for _, r := range required {
		need |= 1 << uint(r)
	}
	coverMask := make([]uint32, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if covers[i][j] {
				coverMask[i] |= 1 << uint(j)
			}
		}
	}
	best := -1
	var bestSet uint32
	limit := uint32(1) << uint(n)
	for s := uint32(1); s < limit; s++ {
		size := bits.OnesCount32(s)
		if best >= 0 && size >= best {
			continue
		}
		var got uint32
		for i := 0; i < n; i++ {
			if s&(1<<uint(i)) != 0 {
				got |= coverMask[i]
			}
		}
		if got&need == need {
			best = size
			bestSet = s
		}
	}
	if best < 0 {
		return nil, ErrNoCover
	}
	var out []int
	for i := 0; i < n; i++ {
		if bestSet&(1<<uint(i)) != 0 {
			out = append(out, i)
		}
	}
	return out, nil
}

// GreedyCover is the ln(n)-approximate greedy set cover used when the
// field count makes exact search unnecessary work (the paper's O(N)
// fallback for large applications).
func GreedyCover(covers [][]bool, required []int) ([]int, error) {
	n := len(covers)
	if len(required) == 0 {
		required = make([]int, n)
		for i := range required {
			required[i] = i
		}
	}
	needed := make(map[int]bool, len(required))
	for _, r := range required {
		needed[r] = true
	}
	var chosen []int
	used := make([]bool, n)
	for len(needed) > 0 {
		best, bestGain := -1, 0
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			gain := 0
			for j := range needed {
				if covers[i][j] {
					gain++
				}
			}
			if gain > bestGain {
				best, bestGain = i, gain
			}
		}
		if best < 0 {
			return nil, ErrNoCover
		}
		used[best] = true
		chosen = append(chosen, best)
		for j := range needed {
			if covers[best][j] {
				delete(needed, j)
			}
		}
	}
	sort.Ints(chosen)
	return chosen, nil
}

// SelfDistanceBaseline returns the mean diagonal of the matrix, the
// estimator's intrinsic noise floor (≈8.9 in the paper's Table III).
func (m *Matrix) SelfDistanceBaseline() float64 {
	var s float64
	for i := range m.Fields {
		s += m.D[i][i]
	}
	if len(m.Fields) == 0 {
		return math.NaN()
	}
	return s / float64(len(m.Fields))
}
