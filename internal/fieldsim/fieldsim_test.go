package fieldsim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/crestlab/crest/internal/grid"
	"github.com/crestlab/crest/internal/predictors"
	"github.com/crestlab/crest/internal/synthdata"
)

func hurricaneFields(t *testing.T) []*grid.Field {
	t.Helper()
	ds := synthdata.Hurricane(synthdata.Options{NZ: 10, NY: 48, NX: 48, Seed: 3})
	return ds.Fields
}

func TestProfilesShape(t *testing.T) {
	fields := hurricaneFields(t)
	p, err := Profiles(fields[0], predictors.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != len(fields[0].Buffers) {
		t.Fatalf("%d profiles", len(p))
	}
	for _, row := range p {
		if len(row) != ProfileDim {
			t.Fatalf("profile dim %d", len(row))
		}
	}
}

func TestDistanceProperties(t *testing.T) {
	fields := hurricaneFields(t)
	pa, err := Profiles(fields[0], predictors.Config{})
	if err != nil {
		t.Fatal(err)
	}
	pb, err := Profiles(fields[7], predictors.Config{}) // TC: very different
	if err != nil {
		t.Fatal(err)
	}
	dab, err := Distance(pa, pb)
	if err != nil {
		t.Fatal(err)
	}
	dba, err := Distance(pb, pa)
	if err != nil {
		t.Fatal(err)
	}
	// Symmetric up to floating-point association order in the pooled
	// covariance accumulation.
	if diff := dab - dba; diff > 1e-9*(1+dab) || diff < -1e-9*(1+dab) {
		t.Errorf("distance not symmetric: %g vs %g", dab, dba)
	}
	if dab <= 0 {
		t.Errorf("distinct fields distance %g", dab)
	}
	if _, err := Distance(nil, pa); err == nil {
		t.Error("empty profile set accepted")
	}
}

func TestSimilarityMatrixStructure(t *testing.T) {
	fields := hurricaneFields(t)
	m, err := SimilarityMatrix(fields, predictors.Config{})
	if err != nil {
		t.Fatal(err)
	}
	n := len(fields)
	if len(m.Fields) != n || len(m.D) != n {
		t.Fatalf("matrix shape")
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if m.D[i][j] != m.D[j][i] {
				t.Fatalf("asymmetric at (%d,%d)", i, j)
			}
			if m.D[i][j] < 0 {
				t.Fatalf("negative distance at (%d,%d)", i, j)
			}
		}
	}
	// The diagonal (self-distance baseline) must be well below the
	// typical off-diagonal distance.
	self := m.SelfDistanceBaseline()
	var off, cnt float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			off += m.D[i][j]
			cnt++
		}
	}
	if self >= off/cnt {
		t.Errorf("self baseline %.2f not below mean off-diagonal %.2f", self, off/cnt)
	}
	// V (deliberately rough outlier field) must be among the most
	// distant rows on average.
	vi := m.FieldIndex("V")
	if vi < 0 {
		t.Fatal("V missing")
	}
	var vMean float64
	for j := range m.Fields {
		if j != vi {
			vMean += m.D[vi][j]
		}
	}
	vMean /= float64(n - 1)
	if vMean < off/cnt {
		t.Errorf("outlier field V mean distance %.2f below overall mean %.2f", vMean, off/cnt)
	}
}

func TestOrderSortedByDistance(t *testing.T) {
	fields := hurricaneFields(t)
	m, err := SimilarityMatrix(fields, predictors.Config{})
	if err != nil {
		t.Fatal(err)
	}
	target := m.FieldIndex("CLOUD")
	order := m.Order(target)
	if len(order) != len(fields)-1 {
		t.Fatalf("order length %d", len(order))
	}
	for i := 1; i < len(order); i++ {
		if m.D[target][order[i-1]] > m.D[target][order[i]] {
			t.Fatal("order not ascending by distance")
		}
	}
	for _, o := range order {
		if o == target {
			t.Fatal("target included in its own order")
		}
	}
}

func TestFieldIndex(t *testing.T) {
	m := &Matrix{Fields: []string{"a", "b"}}
	if m.FieldIndex("b") != 1 || m.FieldIndex("zzz") != -1 {
		t.Error("FieldIndex wrong")
	}
}

func TestCovers(t *testing.T) {
	m := &Matrix{
		Fields: []string{"a", "b", "c"},
		D: [][]float64{
			{0, 1, 9},
			{1, 0, 9},
			{9, 9, 0},
		},
	}
	cov := m.Covers(2)
	if !cov[0][0] || !cov[0][1] || cov[0][2] {
		t.Errorf("covers row 0 = %v", cov[0])
	}
}

func TestExactCoverSmall(t *testing.T) {
	// a covers {a,b}, c covers {c}: minimal cover is {a, c}.
	covers := [][]bool{
		{true, true, false},
		{false, true, false},
		{false, false, true},
	}
	got, err := MinimalCover(covers, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("cover = %v", got)
	}
}

func TestCoverWithRequiredSubset(t *testing.T) {
	covers := [][]bool{
		{true, false, false},
		{false, true, false},
		{false, false, true},
	}
	got, err := MinimalCover(covers, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("cover = %v", got)
	}
}

func TestCoverInfeasible(t *testing.T) {
	covers := [][]bool{
		{true, false},
		{false, false}, // nothing covers field 1
	}
	if _, err := MinimalCover(covers, nil); err == nil {
		t.Error("infeasible instance accepted")
	}
	if _, err := GreedyCover(covers, []int{1}); err == nil {
		t.Error("greedy accepted infeasible instance")
	}
}

// TestExactCoverOptimalVsGreedy: the exact solver never returns a larger
// cover than greedy, and both outputs actually cover everything.
func TestExactCoverOptimalVsGreedy(t *testing.T) {
	prop := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%8) + 2
		covers := make([][]bool, n)
		for i := range covers {
			covers[i] = make([]bool, n)
			covers[i][i] = true
			for j := range covers[i] {
				if rng.Float64() < 0.3 {
					covers[i][j] = true
				}
			}
		}
		exact, err := MinimalCover(covers, nil)
		if err != nil {
			return false // self-cover makes it always feasible
		}
		greedy, err := GreedyCover(covers, nil)
		if err != nil {
			return false
		}
		if len(exact) > len(greedy) {
			return false
		}
		valid := func(set []int) bool {
			covered := make([]bool, n)
			for _, s := range set {
				for j := 0; j < n; j++ {
					if covers[s][j] {
						covered[j] = true
					}
				}
			}
			for _, c := range covered {
				if !c {
					return false
				}
			}
			return true
		}
		return valid(exact) && valid(greedy)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestEmptyCover(t *testing.T) {
	got, err := MinimalCover(nil, nil)
	if err != nil || got != nil {
		t.Errorf("empty instance = %v, %v", got, err)
	}
}

func TestSimilarFieldsAreClose(t *testing.T) {
	// Generate two datasets differing only in seed: the same field recipe
	// must be closer to itself (other seed) than to a different recipe.
	a := synthdata.Hurricane(synthdata.Options{NZ: 10, NY: 48, NX: 48, Seed: 100})
	b := synthdata.Hurricane(synthdata.Options{NZ: 10, NY: 48, NX: 48, Seed: 200})
	cfg := predictors.Config{}
	qsnowA, err := Profiles(a.Field("QSNOW"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	qsnowB, err := Profiles(b.Field("QSNOW"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	vA, err := Profiles(a.Field("V"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	dSame, err := Distance(qsnowA, qsnowB)
	if err != nil {
		t.Fatal(err)
	}
	dDiff, err := Distance(qsnowA, vA)
	if err != nil {
		t.Fatal(err)
	}
	if dSame >= dDiff {
		t.Errorf("same-recipe distance %.2f not below cross-recipe %.2f", dSame, dDiff)
	}
}
