package huffman

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitIORoundTrip(t *testing.T) {
	w := NewBitWriter()
	w.WriteBits(0b101, 3)
	w.WriteBits(0xFFFF, 16)
	w.WriteBits(0, 1)
	w.WriteBits(0x123456789ABCD, 52)
	w.WriteUvarint(300)
	w.WriteUvarint(0)
	r := NewBitReader(w.Bytes())
	if v := r.ReadBits(3); v != 0b101 {
		t.Errorf("3 bits = %b", v)
	}
	if v := r.ReadBits(16); v != 0xFFFF {
		t.Errorf("16 bits = %x", v)
	}
	if v := r.ReadBits(1); v != 0 {
		t.Errorf("1 bit = %d", v)
	}
	if v := r.ReadBits(52); v != 0x123456789ABCD {
		t.Errorf("52 bits = %x", v)
	}
	if v := r.ReadUvarint(); v != 300 {
		t.Errorf("uvarint = %d", v)
	}
	if v := r.ReadUvarint(); v != 0 {
		t.Errorf("uvarint = %d", v)
	}
}

// TestBitIOProperty: arbitrary (value, width) sequences round-trip.
func TestBitIOProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200) + 1
		vals := make([]uint64, n)
		widths := make([]uint, n)
		w := NewBitWriter()
		for i := 0; i < n; i++ {
			widths[i] = uint(rng.Intn(57)) + 1
			vals[i] = rng.Uint64() & (1<<widths[i] - 1)
			w.WriteBits(vals[i], widths[i])
		}
		r := NewBitReader(w.Bytes())
		for i := 0; i < n; i++ {
			if r.ReadBits(widths[i]) != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBitLen(t *testing.T) {
	w := NewBitWriter()
	w.WriteBits(1, 5)
	if w.BitLen() != 5 {
		t.Errorf("BitLen = %d", w.BitLen())
	}
	w.WriteBits(0, 4)
	if w.BitLen() != 9 {
		t.Errorf("BitLen = %d", w.BitLen())
	}
}

func TestEncodeDecodeEmpty(t *testing.T) {
	blob, st := Encode(nil)
	if st.Symbols != 0 {
		t.Errorf("Symbols = %d", st.Symbols)
	}
	out, err := Decode(blob)
	if err != nil || len(out) != 0 {
		t.Errorf("empty decode = %v, %v", out, err)
	}
}

func TestEncodeDecodeSingleSymbol(t *testing.T) {
	syms := []uint32{7, 7, 7, 7, 7}
	blob, st := Encode(syms)
	if st.Symbols != 1 || st.MaxDepth != 1 {
		t.Errorf("stats = %+v", st)
	}
	out, err := Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(syms) {
		t.Fatalf("len = %d", len(out))
	}
	for _, s := range out {
		if s != 7 {
			t.Fatalf("decoded %d", s)
		}
	}
}

func TestEncodeDecodeKnownDistribution(t *testing.T) {
	// Skewed distribution: frequent symbols must get short codes.
	var syms []uint32
	for i := 0; i < 1000; i++ {
		syms = append(syms, 0)
	}
	for i := 0; i < 100; i++ {
		syms = append(syms, 1)
	}
	for i := 0; i < 10; i++ {
		syms = append(syms, 2)
	}
	blob, st := Encode(syms)
	out, err := Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !equalU32(out, syms) {
		t.Fatal("roundtrip mismatch")
	}
	// Average bits should be near the entropy (~0.63 bits here).
	if st.AvgBits > 1.2 {
		t.Errorf("AvgBits = %g for a highly skewed stream", st.AvgBits)
	}
	if st.Nodes != 5 { // 3 leaves -> 5 nodes
		t.Errorf("Nodes = %d", st.Nodes)
	}
}

// TestEncodeDecodeProperty: random streams round-trip exactly.
func TestEncodeDecodeProperty(t *testing.T) {
	prop := func(seed int64, spread uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(2000)
		alphabet := int(spread)%500 + 1
		syms := make([]uint32, n)
		for i := range syms {
			syms[i] = uint32(rng.Intn(alphabet))
		}
		blob, _ := Encode(syms)
		out, err := Decode(blob)
		return err == nil && equalU32(out, syms)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestEncodedSizeNearEntropy(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	n := 20000
	syms := make([]uint32, n)
	freq := map[uint32]int{}
	for i := range syms {
		// Geometric-ish distribution.
		s := uint32(0)
		for rng.Float64() < 0.5 && s < 15 {
			s++
		}
		syms[i] = s
		freq[s]++
	}
	var entropy float64
	for _, c := range freq {
		p := float64(c) / float64(n)
		entropy -= p * math.Log2(p)
	}
	blob, st := Encode(syms)
	payloadBits := float64(len(blob)*8) - 200 // generous table allowance
	if payloadBits > float64(n)*(entropy+0.2) {
		t.Errorf("encoded %0.f bits for entropy %.2f·%d = %.0f",
			payloadBits, entropy, n, entropy*float64(n))
	}
	if st.AvgBits < entropy-1e-9 {
		t.Errorf("AvgBits %g below entropy %g", st.AvgBits, entropy)
	}
}

func TestEncodedBitsMatchesStats(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	syms := make([]uint32, 5000)
	for i := range syms {
		syms[i] = uint32(rng.Intn(64))
	}
	bits := EncodedBits(syms)
	_, st := Encode(syms)
	if math.Abs(bits-st.AvgBits*float64(len(syms))) > 1e-6 {
		t.Errorf("EncodedBits %g vs AvgBits·n %g", bits, st.AvgBits*float64(len(syms)))
	}
}

func TestDecodeCorruptStreams(t *testing.T) {
	if _, err := Decode([]byte{}); err == nil {
		// Empty input decodes as zero count only if header parses; zero
		// bits read as zeros, giving n=0 — accept either but not a panic.
		t.Log("empty input decoded as empty stream")
	}
	// Declared symbols but zero-length code.
	w := NewBitWriter()
	w.WriteUvarint(5) // n
	w.WriteUvarint(1) // nsym
	w.WriteUvarint(3) // symbol
	w.WriteBits(0, 6) // invalid code length 0
	if _, err := Decode(w.Bytes()); err == nil {
		t.Error("zero code length accepted")
	}
	// Huge symbol count.
	w2 := NewBitWriter()
	w2.WriteUvarint(10)
	w2.WriteUvarint(1 << 30)
	if _, err := Decode(w2.Bytes()); err == nil {
		t.Error("absurd symbol count accepted")
	}
}

func TestDeterministicEncoding(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	syms := make([]uint32, 1000)
	for i := range syms {
		syms[i] = uint32(rng.Intn(16))
	}
	a, _ := Encode(syms)
	b, _ := Encode(syms)
	if !bytes.Equal(a, b) {
		t.Error("encoding is not deterministic")
	}
}

func equalU32(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
