package huffman

// BitWriter packs bits MSB-first into a byte slice.
type BitWriter struct {
	buf  []byte
	cur  uint64
	nCur uint // bits currently in cur (< 8)
}

// NewBitWriter returns an empty writer.
func NewBitWriter() *BitWriter { return &BitWriter{} }

// WriteBits writes the low n bits of v, most significant first. n ≤ 57.
func (w *BitWriter) WriteBits(v uint64, n uint) {
	if n == 0 {
		return
	}
	w.cur = w.cur<<n | (v & (1<<n - 1))
	w.nCur += n
	for w.nCur >= 8 {
		w.nCur -= 8
		w.buf = append(w.buf, byte(w.cur>>w.nCur))
	}
}

// WriteUvarint writes v with a variable-length 7-bit group encoding.
func (w *BitWriter) WriteUvarint(v uint64) {
	for v >= 0x80 {
		w.WriteBits(uint64(byte(v)|0x80), 8)
		v >>= 7
	}
	w.WriteBits(v, 8)
}

// Bytes flushes any partial byte (zero-padded) and returns the buffer.
func (w *BitWriter) Bytes() []byte {
	if w.nCur > 0 {
		pad := 8 - w.nCur
		w.buf = append(w.buf, byte(w.cur<<pad))
		w.cur, w.nCur = 0, 0
	}
	return w.buf
}

// BitLen returns the number of bits written so far.
func (w *BitWriter) BitLen() int { return len(w.buf)*8 + int(w.nCur) }

// BitReader unpacks bits MSB-first from a byte slice.
type BitReader struct {
	buf  []byte
	pos  int // byte position
	cur  uint64
	nCur uint
}

// NewBitReader reads from b.
func NewBitReader(b []byte) *BitReader { return &BitReader{buf: b} }

// ReadBits reads n bits (n ≤ 57), returning them in the low bits. Reading
// past the end yields zero bits, matching the writer's zero padding.
func (r *BitReader) ReadBits(n uint) uint64 {
	for r.nCur < n {
		var next byte
		if r.pos < len(r.buf) {
			next = r.buf[r.pos]
			r.pos++
		}
		r.cur = r.cur<<8 | uint64(next)
		r.nCur += 8
	}
	r.nCur -= n
	v := r.cur >> r.nCur
	r.cur &= 1<<r.nCur - 1
	return v & (1<<n - 1)
}

// ReadUvarint reads a value written by WriteUvarint.
func (r *BitReader) ReadUvarint() uint64 {
	var v uint64
	var shift uint
	for {
		b := byte(r.ReadBits(8))
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v
		}
		shift += 7
	}
}
