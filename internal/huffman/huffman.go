// Package huffman implements a canonical Huffman entropy coder over uint32
// symbol streams together with MSB-first bit I/O. It is the lossless
// encoding backend of the SZ-family compressors in internal/compressors,
// and its tree statistics (node count, depth) feed the Lu white-box
// baseline estimator.
package huffman

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"
)

// MaxCodeLen caps canonical code lengths; codes longer than this are
// flattened by the Kraft-repair pass.
const MaxCodeLen = 32

// ErrCorrupt reports an undecodable Huffman stream.
var ErrCorrupt = errors.New("huffman: corrupt stream")

// Stats summarizes the code built for a stream. The Lu baseline uses these
// internals (paper §III: "the number of nodes in the Huffman tree").
type Stats struct {
	Symbols  int     // distinct symbols
	Nodes    int     // internal + leaf nodes of the tree
	MaxDepth int     // longest code length
	AvgBits  float64 // expected code length under the empirical distribution
}

type hnode struct {
	freq        int
	sym         uint32
	left, right *hnode
}

type hheap []*hnode

func (h hheap) Len() int { return len(h) }
func (h hheap) Less(i, j int) bool {
	if h[i].freq != h[j].freq {
		return h[i].freq < h[j].freq
	}
	return h[i].sym < h[j].sym // deterministic tie-break
}
func (h hheap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *hheap) Push(x any)   { *h = append(*h, x.(*hnode)) }
func (h *hheap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// codeLengths returns the canonical code length for each distinct symbol.
func codeLengths(freqs map[uint32]int) (map[uint32]uint8, Stats) {
	var stats Stats
	stats.Symbols = len(freqs)
	if len(freqs) == 0 {
		return map[uint32]uint8{}, stats
	}
	if len(freqs) == 1 {
		for s := range freqs {
			stats.Nodes = 1
			stats.MaxDepth = 1
			stats.AvgBits = 1
			return map[uint32]uint8{s: 1}, stats
		}
	}
	h := make(hheap, 0, len(freqs))
	for s, f := range freqs {
		h = append(h, &hnode{freq: f, sym: s})
	}
	heap.Init(&h)
	nodes := len(h)
	for h.Len() > 1 {
		a := heap.Pop(&h).(*hnode)
		b := heap.Pop(&h).(*hnode)
		heap.Push(&h, &hnode{freq: a.freq + b.freq, sym: min32(a.sym, b.sym), left: a, right: b})
		nodes++
	}
	stats.Nodes = nodes
	lengths := make(map[uint32]uint8, len(freqs))
	var walk func(n *hnode, depth uint8)
	walk = func(n *hnode, depth uint8) {
		if n.left == nil {
			if depth == 0 {
				depth = 1
			}
			lengths[n.sym] = depth
			if int(depth) > stats.MaxDepth {
				stats.MaxDepth = int(depth)
			}
			return
		}
		walk(n.left, depth+1)
		walk(n.right, depth+1)
	}
	walk(h[0], 0)
	repairLengths(lengths)
	var total, bits float64
	for s, f := range freqs {
		total += float64(f)
		bits += float64(f) * float64(lengths[s])
	}
	if total > 0 {
		stats.AvgBits = bits / total
	}
	if stats.MaxDepth > MaxCodeLen {
		stats.MaxDepth = MaxCodeLen
	}
	return lengths, stats
}

func min32(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}

// repairLengths clamps code lengths to MaxCodeLen and restores the Kraft
// inequality by lengthening the shortest codes as needed.
func repairLengths(lengths map[uint32]uint8) {
	over := false
	for _, l := range lengths {
		if l > MaxCodeLen {
			over = true
			break
		}
	}
	if !over {
		return
	}
	syms := make([]uint32, 0, len(lengths))
	for s := range lengths {
		if lengths[s] > MaxCodeLen {
			lengths[s] = MaxCodeLen
		}
		syms = append(syms, s)
	}
	sort.Slice(syms, func(i, j int) bool { return lengths[syms[i]] < lengths[syms[j]] })
	// Kraft sum in units of 2^-MaxCodeLen.
	kraft := uint64(0)
	for _, s := range syms {
		kraft += 1 << (MaxCodeLen - lengths[s])
	}
	limit := uint64(1) << MaxCodeLen
	for i := 0; kraft > limit && i < len(syms); {
		s := syms[i]
		if lengths[s] < MaxCodeLen {
			kraft -= 1 << (MaxCodeLen - lengths[s] - 1)
			lengths[s]++
		} else {
			i++
		}
	}
}

// canonicalCodes assigns canonical codes from lengths: shorter codes first,
// ties broken by symbol value.
func canonicalCodes(lengths map[uint32]uint8) (codes map[uint32]uint32, order []uint32) {
	order = make([]uint32, 0, len(lengths))
	for s := range lengths {
		order = append(order, s)
	}
	sort.Slice(order, func(i, j int) bool {
		li, lj := lengths[order[i]], lengths[order[j]]
		if li != lj {
			return li < lj
		}
		return order[i] < order[j]
	})
	codes = make(map[uint32]uint32, len(lengths))
	var code uint32
	var prevLen uint8
	for _, s := range order {
		l := lengths[s]
		code <<= l - prevLen
		codes[s] = code
		code++
		prevLen = l
	}
	return codes, order
}

// Encode entropy-codes syms and returns the serialized stream (table +
// payload) plus code statistics. The table stores the distinct symbols and
// their canonical code lengths.
func Encode(syms []uint32) ([]byte, Stats) {
	freqs := make(map[uint32]int, 256)
	for _, s := range syms {
		freqs[s]++
	}
	lengths, stats := codeLengths(freqs)
	codes, order := canonicalCodes(lengths)

	w := NewBitWriter()
	w.WriteUvarint(uint64(len(syms)))
	w.WriteUvarint(uint64(len(order)))
	for _, s := range order {
		w.WriteUvarint(uint64(s))
		w.WriteBits(uint64(lengths[s]), 6)
	}
	for _, s := range syms {
		w.WriteBits(uint64(codes[s]), uint(lengths[s]))
	}
	return w.Bytes(), stats
}

// Decode reverses Encode.
func Decode(data []byte) ([]uint32, error) {
	r := NewBitReader(data)
	n := int(r.ReadUvarint())
	nsym := int(r.ReadUvarint())
	// Every decoded symbol consumes at least one payload bit, so the
	// declared count cannot exceed the bitstream length.
	if n < 0 || n > 8*len(data) || nsym < 0 || nsym > 1<<24 || nsym > len(data) {
		return nil, ErrCorrupt
	}
	if n == 0 {
		return []uint32{}, nil
	}
	if nsym == 0 {
		return nil, ErrCorrupt
	}
	lengths := make(map[uint32]uint8, nsym)
	order := make([]uint32, nsym)
	for i := 0; i < nsym; i++ {
		s := uint32(r.ReadUvarint())
		l := uint8(r.ReadBits(6))
		if l == 0 || l > MaxCodeLen {
			return nil, fmt.Errorf("%w: bad code length %d", ErrCorrupt, l)
		}
		lengths[s] = l
		order[i] = s
	}
	_, sorted := canonicalCodes(lengths)
	// Canonical decode tables: per length, the first code, the count of
	// codes and the offset into the length-sorted symbol list.
	var count [MaxCodeLen + 1]uint32
	for _, s := range sorted {
		count[lengths[s]]++
	}
	var firstCode, offset [MaxCodeLen + 1]uint32
	var code, off uint32
	for l := 1; l <= MaxCodeLen; l++ {
		code <<= 1
		firstCode[l] = code
		offset[l] = off
		code += count[l]
		off += count[l]
	}
	out := make([]uint32, 0, n)
	for len(out) < n {
		var cur uint32
		matched := false
		for l := 1; l <= MaxCodeLen; l++ {
			cur = cur<<1 | uint32(r.ReadBits(1))
			if count[l] > 0 && cur >= firstCode[l] && cur-firstCode[l] < count[l] {
				out = append(out, sorted[offset[l]+cur-firstCode[l]])
				matched = true
				break
			}
		}
		if !matched {
			return nil, fmt.Errorf("%w: unmatched code", ErrCorrupt)
		}
	}
	return out, nil
}

// EncodedBits estimates the payload size in bits of entropy-coding syms
// without materializing the stream, used by white-box estimators.
func EncodedBits(syms []uint32) float64 {
	freqs := make(map[uint32]int, 256)
	for _, s := range syms {
		freqs[s]++
	}
	lengths, _ := codeLengths(freqs)
	var bits float64
	for s, f := range freqs {
		bits += float64(f) * float64(lengths[s])
	}
	return bits
}
