package huffman

import (
	"math/rand"
	"testing"
)

func benchStream(n, alphabet int) []uint32 {
	rng := rand.New(rand.NewSource(7))
	syms := make([]uint32, n)
	for i := range syms {
		// Geometric-ish skew, like quantization codes around the center.
		s := 0
		for rng.Float64() < 0.6 && s < alphabet-1 {
			s++
		}
		syms[i] = uint32(s)
	}
	return syms
}

func BenchmarkEncode(b *testing.B) {
	syms := benchStream(1<<16, 64)
	b.SetBytes(int64(len(syms) * 4))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Encode(syms)
	}
}

func BenchmarkDecode(b *testing.B) {
	syms := benchStream(1<<16, 64)
	blob, _ := Encode(syms)
	b.SetBytes(int64(len(syms) * 4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(blob); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodedBits(b *testing.B) {
	syms := benchStream(1<<16, 64)
	for i := 0; i < b.N; i++ {
		EncodedBits(syms)
	}
}
