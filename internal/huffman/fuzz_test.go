package huffman

import "testing"

// FuzzDecode hardens the canonical Huffman decoder: arbitrary bytes must
// yield an error or a valid symbol stream — never a panic.
func FuzzDecode(f *testing.F) {
	for _, syms := range [][]uint32{
		{}, {1}, {1, 1, 2, 3, 1}, {65535, 0, 65535}, {7, 7, 7, 7},
	} {
		blob, _ := Encode(syms)
		f.Add(blob)
	}
	f.Add([]byte{0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = Decode(data)
	})
}

// FuzzRoundTrip checks Encode∘Decode identity on arbitrary symbol
// streams derived from fuzz bytes.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 1, 2, 1})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) > 1<<16 {
			raw = raw[:1<<16]
		}
		syms := make([]uint32, len(raw))
		for i, b := range raw {
			syms[i] = uint32(b)
		}
		blob, _ := Encode(syms)
		out, err := Decode(blob)
		if err != nil {
			t.Fatalf("decode of own encoding failed: %v", err)
		}
		if len(out) != len(syms) {
			t.Fatalf("length %d != %d", len(out), len(syms))
		}
		for i := range syms {
			if out[i] != syms[i] {
				t.Fatalf("mismatch at %d", i)
			}
		}
	})
}
