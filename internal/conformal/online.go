package conformal

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// online.go adds rolling recalibration on top of a fitted split-conformal
// model. The offline guarantee (coverage ≥ 1−λ) holds under
// exchangeability with the calibration set; a long-running estimation
// service sees drifting fields, so the empirical coverage of the static
// radius can sag (intervals too narrow) or bloat (too wide). OnlineModel
// tracks the rolling empirical coverage over the last Window observed
// (prediction, truth) pairs and, when it leaves the configured band around
// 1−λ, re-fits the radius as the (1−λ)(m+1)-quantile of the rolling
// absolute residuals — the same order statistic Fit uses, applied to the
// recent window instead of the held-out calibration split.
//
// Coverage accounting: each observation is scored against the radius that
// was in effect when it arrived, which is what the operator actually
// served. After a recalibration, the rolling hit counts are REcomputed
// against the new radius, so the tracker measures "would the current
// radius have covered the recent past" rather than a mixture of stale
// verdicts that can never re-enter the band. TestOnlineRecalibration
// pins this: with stale verdicts a post-drift recalibration raises the
// radius but the reported coverage stays below the band forever and the
// model thrashes through its cooldown.

// OnlineConfig tunes the recalibration loop. The JSON tags exist because
// the config travels inside persisted OnlineState.
type OnlineConfig struct {
	// Window is the number of recent observations retained (default 512).
	Window int `json:"window,omitempty"`
	// Band is the half-width of the acceptable coverage band around 1−λ:
	// recalibration triggers when rolling coverage leaves
	// [1−λ−Band, min(1, 1−λ+Band)] (default 0.03).
	Band float64 `json:"band,omitempty"`
	// MinObserve is the warm-up count before the tracker may trigger
	// (default max(64, Window/4)); a handful of early misses would
	// otherwise cause a recalibration from almost no data.
	MinObserve int `json:"min_observe,omitempty"`
	// Cooldown is the minimum number of observations between
	// recalibrations (default MinObserve), so one drift event produces
	// one radius update, not a thrash per observation while the window
	// refills.
	Cooldown int `json:"cooldown,omitempty"`
}

func (c OnlineConfig) withDefaults() OnlineConfig {
	if c.Window <= 0 {
		c.Window = 512
	}
	if c.Band <= 0 {
		c.Band = 0.03
	}
	if c.MinObserve <= 0 {
		c.MinObserve = c.Window / 4
		if c.MinObserve < 64 {
			c.MinObserve = 64
		}
	}
	if c.MinObserve > c.Window {
		c.MinObserve = c.Window
	}
	if c.Cooldown <= 0 {
		c.Cooldown = c.MinObserve
	}
	return c
}

// OnlineStats is a snapshot of the tracker state.
type OnlineStats struct {
	// Radius currently in effect.
	Radius float64
	// Coverage over the rolling window (NaN before any observation).
	Coverage float64
	// Observations seen in total and currently windowed.
	Observed, Windowed int
	// Recalibrations performed so far.
	Recalibrations int
	// Target coverage 1−λ and the band half-width.
	Target, Band float64
}

// InBand reports whether the rolling coverage lies inside the configured
// band (vacuously true before any observation).
func (s OnlineStats) InBand() bool {
	if math.IsNaN(s.Coverage) {
		return true
	}
	hi := s.Target + s.Band
	if hi > 1 {
		hi = 1
	}
	return s.Coverage >= s.Target-s.Band && s.Coverage <= hi
}

// OnlineModel wraps a fitted Model with rolling-coverage recalibration.
// All methods are safe for concurrent use.
type OnlineModel struct {
	mu     sync.Mutex
	inner  Predictor
	lambda float64
	radius float64
	cfg    OnlineConfig

	// Ring of the last cfg.Window observations.
	resid []float64 // |y − f̂(x)|
	hits  []bool    // resid[i] <= radius in effect (recomputed on recalib)
	head  int       // next write position
	n     int       // occupied ring entries
	nHits int       // count of true entries in hits[:n]

	observed  int // total Observe calls
	recals    int // recalibrations performed
	lastRecal int // observed count at the last recalibration
}

// NewOnline wraps a fitted model for rolling recalibration. The wrapped
// model is not mutated; the online radius starts at the offline one.
func NewOnline(m *Model, cfg OnlineConfig) *OnlineModel {
	cfg = cfg.withDefaults()
	return &OnlineModel{
		inner:  m.inner,
		lambda: m.lambda,
		radius: m.radius,
		cfg:    cfg,
		resid:  make([]float64, cfg.Window),
		hits:   make([]bool, cfg.Window),
	}
}

// Predict returns the interval under the current (possibly recalibrated)
// radius.
func (o *OnlineModel) Predict(x []float64) Interval {
	p := o.inner.Predict(x)
	o.mu.Lock()
	r := o.radius
	o.mu.Unlock()
	return Interval{Point: p, Lo: p - r, Hi: p + r}
}

// Radius returns the radius currently in effect.
func (o *OnlineModel) Radius() float64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.radius
}

// Observe records the ground truth y for covariates x, updates the
// rolling coverage, and recalibrates the radius if the coverage has left
// the band. It returns the post-update snapshot and whether this call
// recalibrated.
func (o *OnlineModel) Observe(x []float64, y float64) (OnlineStats, bool) {
	res := math.Abs(y - o.inner.Predict(x))
	o.mu.Lock()
	defer o.mu.Unlock()

	hit := res <= o.radius
	if o.n == o.cfg.Window {
		// Evict the overwritten entry from the hit count.
		if o.hits[o.head] {
			o.nHits--
		}
	} else {
		o.n++
	}
	o.resid[o.head] = res
	o.hits[o.head] = hit
	if hit {
		o.nHits++
	}
	o.head = (o.head + 1) % o.cfg.Window
	o.observed++

	recal := false
	if o.shouldRecalibrate() {
		o.recalibrate()
		recal = true
	}
	return o.statsLocked(), recal
}

// shouldRecalibrate is called with o.mu held.
func (o *OnlineModel) shouldRecalibrate() bool {
	if o.observed < o.cfg.MinObserve || o.n < o.cfg.MinObserve {
		return false
	}
	if o.observed-o.lastRecal < o.cfg.Cooldown && o.recals > 0 {
		return false
	}
	cov := float64(o.nHits) / float64(o.n)
	target := 1 - o.lambda
	hi := target + o.cfg.Band
	if hi > 1 {
		hi = 1
	}
	return cov < target-o.cfg.Band || cov > hi
}

// recalibrate is called with o.mu held: the new radius is the
// (1−λ)(m+1)-quantile of the rolling residuals, and the window's hit
// verdicts are recomputed against it so the reported coverage reflects
// the radius now being served.
func (o *OnlineModel) recalibrate() {
	m := o.n
	res := make([]float64, m)
	// Ring occupancy: when full the window is the whole ring; when
	// partially full it is [0, n) because head has never wrapped.
	copy(res, o.resid[:m])
	sort.Float64s(res)
	k := int(math.Ceil((1 - o.lambda) * float64(m+1)))
	if k > m {
		k = m
	}
	o.radius = res[k-1]

	o.nHits = 0
	for i := 0; i < m; i++ {
		o.hits[i] = o.resid[i] <= o.radius
		if o.hits[i] {
			o.nHits++
		}
	}
	o.recals++
	o.lastRecal = o.observed
}

// OnlineState is the serializable tracker state: everything needed to
// resume rolling recalibration exactly where a previous process stopped,
// so a restart does not silently discard the coverage history that
// justified the current radius. Residuals are ordered oldest → newest;
// hit verdicts are not stored — they are a pure function of residuals and
// radius and are recomputed on restore.
type OnlineState struct {
	Config         OnlineConfig `json:"config"`
	Radius         float64      `json:"radius"`
	Residuals      []float64    `json:"residuals,omitempty"`
	Observed       int          `json:"observed"`
	Recalibrations int          `json:"recalibrations"`
	LastRecal      int          `json:"last_recal"`
}

// State extracts the tracker for persistence.
func (o *OnlineModel) State() OnlineState {
	o.mu.Lock()
	defer o.mu.Unlock()
	resid := make([]float64, o.n)
	if o.n == o.cfg.Window {
		// Full ring: head is the oldest entry.
		k := copy(resid, o.resid[o.head:])
		copy(resid[k:], o.resid[:o.head])
	} else {
		// Partially full: head has never wrapped, [0, n) is chronological.
		copy(resid, o.resid[:o.n])
	}
	return OnlineState{
		Config:         o.cfg,
		Radius:         o.radius,
		Residuals:      resid,
		Observed:       o.observed,
		Recalibrations: o.recals,
		LastRecal:      o.lastRecal,
	}
}

// NewOnlineFromState rebuilds a tracker around a restored model,
// validating every invariant Observe relies on so corrupt snapshot bytes
// cannot produce a panicking or silently wrong tracker. The restored
// radius is the persisted (possibly recalibrated) one, not the model's
// offline radius.
func NewOnlineFromState(m *Model, st OnlineState) (*OnlineModel, error) {
	cfg := st.Config.withDefaults()
	if len(st.Residuals) > cfg.Window {
		return nil, fmt.Errorf("conformal: online state has %d residuals for window %d",
			len(st.Residuals), cfg.Window)
	}
	if math.IsNaN(st.Radius) || math.IsInf(st.Radius, 0) || st.Radius < 0 {
		return nil, fmt.Errorf("conformal: online state radius %g", st.Radius)
	}
	for i, r := range st.Residuals {
		if math.IsNaN(r) || math.IsInf(r, 0) || r < 0 {
			return nil, fmt.Errorf("conformal: online state residual %d is %g", i, r)
		}
	}
	if st.Observed < len(st.Residuals) {
		return nil, fmt.Errorf("conformal: online state observed %d < %d windowed residuals",
			st.Observed, len(st.Residuals))
	}
	if st.Recalibrations < 0 || st.LastRecal < 0 || st.LastRecal > st.Observed {
		return nil, fmt.Errorf("conformal: online state recal counters %d/%d observed %d",
			st.Recalibrations, st.LastRecal, st.Observed)
	}
	o := &OnlineModel{
		inner:     m.inner,
		lambda:    m.lambda,
		radius:    st.Radius,
		cfg:       cfg,
		resid:     make([]float64, cfg.Window),
		hits:      make([]bool, cfg.Window),
		observed:  st.Observed,
		recals:    st.Recalibrations,
		lastRecal: st.LastRecal,
	}
	o.n = len(st.Residuals)
	copy(o.resid, st.Residuals)
	// head = n % Window: the next write lands after the newest entry, or
	// on the oldest (index 0) when the window is exactly full.
	o.head = o.n % cfg.Window
	for i := 0; i < o.n; i++ {
		o.hits[i] = o.resid[i] <= o.radius
		if o.hits[i] {
			o.nHits++
		}
	}
	return o, nil
}

// Stats returns a snapshot of the tracker.
func (o *OnlineModel) Stats() OnlineStats {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.statsLocked()
}

func (o *OnlineModel) statsLocked() OnlineStats {
	cov := math.NaN()
	if o.n > 0 {
		cov = float64(o.nHits) / float64(o.n)
	}
	return OnlineStats{
		Radius:         o.radius,
		Coverage:       cov,
		Observed:       o.observed,
		Windowed:       o.n,
		Recalibrations: o.recals,
		Target:         1 - o.lambda,
		Band:           o.cfg.Band,
	}
}
