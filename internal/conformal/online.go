package conformal

import (
	"math"
	"sort"
	"sync"
)

// online.go adds rolling recalibration on top of a fitted split-conformal
// model. The offline guarantee (coverage ≥ 1−λ) holds under
// exchangeability with the calibration set; a long-running estimation
// service sees drifting fields, so the empirical coverage of the static
// radius can sag (intervals too narrow) or bloat (too wide). OnlineModel
// tracks the rolling empirical coverage over the last Window observed
// (prediction, truth) pairs and, when it leaves the configured band around
// 1−λ, re-fits the radius as the (1−λ)(m+1)-quantile of the rolling
// absolute residuals — the same order statistic Fit uses, applied to the
// recent window instead of the held-out calibration split.
//
// Coverage accounting: each observation is scored against the radius that
// was in effect when it arrived, which is what the operator actually
// served. After a recalibration, the rolling hit counts are REcomputed
// against the new radius, so the tracker measures "would the current
// radius have covered the recent past" rather than a mixture of stale
// verdicts that can never re-enter the band. TestOnlineRecalibration
// pins this: with stale verdicts a post-drift recalibration raises the
// radius but the reported coverage stays below the band forever and the
// model thrashes through its cooldown.

// OnlineConfig tunes the recalibration loop.
type OnlineConfig struct {
	// Window is the number of recent observations retained (default 512).
	Window int
	// Band is the half-width of the acceptable coverage band around 1−λ:
	// recalibration triggers when rolling coverage leaves
	// [1−λ−Band, min(1, 1−λ+Band)] (default 0.03).
	Band float64
	// MinObserve is the warm-up count before the tracker may trigger
	// (default max(64, Window/4)); a handful of early misses would
	// otherwise cause a recalibration from almost no data.
	MinObserve int
	// Cooldown is the minimum number of observations between
	// recalibrations (default MinObserve), so one drift event produces
	// one radius update, not a thrash per observation while the window
	// refills.
	Cooldown int
}

func (c OnlineConfig) withDefaults() OnlineConfig {
	if c.Window <= 0 {
		c.Window = 512
	}
	if c.Band <= 0 {
		c.Band = 0.03
	}
	if c.MinObserve <= 0 {
		c.MinObserve = c.Window / 4
		if c.MinObserve < 64 {
			c.MinObserve = 64
		}
	}
	if c.MinObserve > c.Window {
		c.MinObserve = c.Window
	}
	if c.Cooldown <= 0 {
		c.Cooldown = c.MinObserve
	}
	return c
}

// OnlineStats is a snapshot of the tracker state.
type OnlineStats struct {
	// Radius currently in effect.
	Radius float64
	// Coverage over the rolling window (NaN before any observation).
	Coverage float64
	// Observations seen in total and currently windowed.
	Observed, Windowed int
	// Recalibrations performed so far.
	Recalibrations int
	// Target coverage 1−λ and the band half-width.
	Target, Band float64
}

// InBand reports whether the rolling coverage lies inside the configured
// band (vacuously true before any observation).
func (s OnlineStats) InBand() bool {
	if math.IsNaN(s.Coverage) {
		return true
	}
	hi := s.Target + s.Band
	if hi > 1 {
		hi = 1
	}
	return s.Coverage >= s.Target-s.Band && s.Coverage <= hi
}

// OnlineModel wraps a fitted Model with rolling-coverage recalibration.
// All methods are safe for concurrent use.
type OnlineModel struct {
	mu     sync.Mutex
	inner  Predictor
	lambda float64
	radius float64
	cfg    OnlineConfig

	// Ring of the last cfg.Window observations.
	resid []float64 // |y − f̂(x)|
	hits  []bool    // resid[i] <= radius in effect (recomputed on recalib)
	head  int       // next write position
	n     int       // occupied ring entries
	nHits int       // count of true entries in hits[:n]

	observed  int // total Observe calls
	recals    int // recalibrations performed
	lastRecal int // observed count at the last recalibration
}

// NewOnline wraps a fitted model for rolling recalibration. The wrapped
// model is not mutated; the online radius starts at the offline one.
func NewOnline(m *Model, cfg OnlineConfig) *OnlineModel {
	cfg = cfg.withDefaults()
	return &OnlineModel{
		inner:  m.inner,
		lambda: m.lambda,
		radius: m.radius,
		cfg:    cfg,
		resid:  make([]float64, cfg.Window),
		hits:   make([]bool, cfg.Window),
	}
}

// Predict returns the interval under the current (possibly recalibrated)
// radius.
func (o *OnlineModel) Predict(x []float64) Interval {
	p := o.inner.Predict(x)
	o.mu.Lock()
	r := o.radius
	o.mu.Unlock()
	return Interval{Point: p, Lo: p - r, Hi: p + r}
}

// Radius returns the radius currently in effect.
func (o *OnlineModel) Radius() float64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.radius
}

// Observe records the ground truth y for covariates x, updates the
// rolling coverage, and recalibrates the radius if the coverage has left
// the band. It returns the post-update snapshot and whether this call
// recalibrated.
func (o *OnlineModel) Observe(x []float64, y float64) (OnlineStats, bool) {
	res := math.Abs(y - o.inner.Predict(x))
	o.mu.Lock()
	defer o.mu.Unlock()

	hit := res <= o.radius
	if o.n == o.cfg.Window {
		// Evict the overwritten entry from the hit count.
		if o.hits[o.head] {
			o.nHits--
		}
	} else {
		o.n++
	}
	o.resid[o.head] = res
	o.hits[o.head] = hit
	if hit {
		o.nHits++
	}
	o.head = (o.head + 1) % o.cfg.Window
	o.observed++

	recal := false
	if o.shouldRecalibrate() {
		o.recalibrate()
		recal = true
	}
	return o.statsLocked(), recal
}

// shouldRecalibrate is called with o.mu held.
func (o *OnlineModel) shouldRecalibrate() bool {
	if o.observed < o.cfg.MinObserve || o.n < o.cfg.MinObserve {
		return false
	}
	if o.observed-o.lastRecal < o.cfg.Cooldown && o.recals > 0 {
		return false
	}
	cov := float64(o.nHits) / float64(o.n)
	target := 1 - o.lambda
	hi := target + o.cfg.Band
	if hi > 1 {
		hi = 1
	}
	return cov < target-o.cfg.Band || cov > hi
}

// recalibrate is called with o.mu held: the new radius is the
// (1−λ)(m+1)-quantile of the rolling residuals, and the window's hit
// verdicts are recomputed against it so the reported coverage reflects
// the radius now being served.
func (o *OnlineModel) recalibrate() {
	m := o.n
	res := make([]float64, m)
	// Ring occupancy: when full the window is the whole ring; when
	// partially full it is [0, n) because head has never wrapped.
	copy(res, o.resid[:m])
	sort.Float64s(res)
	k := int(math.Ceil((1 - o.lambda) * float64(m+1)))
	if k > m {
		k = m
	}
	o.radius = res[k-1]

	o.nHits = 0
	for i := 0; i < m; i++ {
		o.hits[i] = o.resid[i] <= o.radius
		if o.hits[i] {
			o.nHits++
		}
	}
	o.recals++
	o.lastRecal = o.observed
}

// Stats returns a snapshot of the tracker.
func (o *OnlineModel) Stats() OnlineStats {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.statsLocked()
}

func (o *OnlineModel) statsLocked() OnlineStats {
	cov := math.NaN()
	if o.n > 0 {
		cov = float64(o.nHits) / float64(o.n)
	}
	return OnlineStats{
		Radius:         o.radius,
		Coverage:       cov,
		Observed:       o.observed,
		Windowed:       o.n,
		Recalibrations: o.recals,
		Target:         1 - o.lambda,
		Band:           o.cfg.Band,
	}
}
