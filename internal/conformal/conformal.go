// Package conformal implements split conformal prediction (Algorithm 1 of
// the paper): the training data is divided into a proper training set and
// a calibration set, a point-prediction model is fitted on the former, and
// the (1−λ) quantile of the absolute calibration residuals widens every
// subsequent point estimate into a distribution-free prediction interval
// with marginal coverage ≥ 1−λ.
package conformal

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Predictor is any point-prediction model (the mixture regression in the
// paper's pipeline).
type Predictor interface {
	Predict(x []float64) float64
}

// Fitter trains a Predictor on a subset of the data; it is invoked once on
// the proper training split.
type Fitter func(x [][]float64, y []float64) (Predictor, error)

// Interval is a conformal prediction interval around a point estimate.
type Interval struct {
	Point, Lo, Hi float64
}

// Contains reports whether y lies in [Lo, Hi].
func (iv Interval) Contains(y float64) bool { return y >= iv.Lo && y <= iv.Hi }

// Width returns Hi − Lo.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

// Config tunes the split.
type Config struct {
	// Lambda is the miscoverage level (default 0.05 for 95% intervals).
	Lambda float64
	// CalibFraction of the data goes to the calibration set
	// (default 0.3).
	CalibFraction float64
	// Seed drives the deterministic split shuffle.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Lambda <= 0 || c.Lambda >= 1 {
		c.Lambda = 0.05
	}
	if c.CalibFraction <= 0 || c.CalibFraction >= 1 {
		c.CalibFraction = 0.3
	}
	return c
}

// Model is a calibrated conformal predictor.
type Model struct {
	inner  Predictor
	radius float64 // R̃_λ, the calibration residual quantile
	lambda float64
	nCalib int
}

// ErrTooFewSamples reports a training set too small to split.
var ErrTooFewSamples = errors.New("conformal: need at least 4 samples")

// Fit performs Algorithm 1 stages 1–5: split, train, compute and sort
// calibration residuals, and extract the (1−λ) quantile
// R̃_(k), k = ⌈(1−λ)(m+1)⌉.
func Fit(x [][]float64, y []float64, fit Fitter, cfg Config) (*Model, error) {
	return FitGrouped(x, y, nil, fit, cfg)
}

// FitGrouped is Fit with an exchangeability unit coarser than a row: when
// groups are provided (e.g. the source field of each training buffer), the
// calibration set is whole held-out groups, so the calibration residuals
// include the group-to-group shift. This is what keeps the coverage
// guarantee meaningful for the paper's out-of-sample (cross-field)
// prediction: a future unseen field is exchangeable with held-out
// calibration fields, not with held-out rows. With nil groups or a single
// group, the standard row split is used.
func FitGrouped(x [][]float64, y []float64, groups []int, fit Fitter, cfg Config) (*Model, error) {
	cfg = cfg.withDefaults()
	n := len(x)
	if n != len(y) {
		return nil, fmt.Errorf("conformal: %d covariate rows vs %d targets", n, len(y))
	}
	if groups != nil && len(groups) != n {
		return nil, fmt.Errorf("conformal: %d group labels vs %d rows", len(groups), n)
	}
	if n < 4 {
		return nil, ErrTooFewSamples
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var calIdx, trainIdx []int
	if distinct := distinctGroups(groups); len(distinct) >= 2 {
		gperm := rng.Perm(len(distinct))
		nCalG := int(math.Round(cfg.CalibFraction * float64(len(distinct))))
		if nCalG < 1 {
			nCalG = 1
		}
		if nCalG > len(distinct)-1 {
			nCalG = len(distinct) - 1
		}
		calGroups := make(map[int]bool, nCalG)
		for _, gi := range gperm[:nCalG] {
			calGroups[distinct[gi]] = true
		}
		for i, g := range groups {
			if calGroups[g] {
				calIdx = append(calIdx, i)
			} else {
				trainIdx = append(trainIdx, i)
			}
		}
	} else {
		idx := rng.Perm(n)
		nCal := int(math.Round(cfg.CalibFraction * float64(n)))
		if nCal < 1 {
			nCal = 1
		}
		if nCal > n-2 {
			nCal = n - 2
		}
		calIdx, trainIdx = idx[:nCal], idx[nCal:]
	}

	tx := make([][]float64, len(trainIdx))
	ty := make([]float64, len(trainIdx))
	for i, j := range trainIdx {
		tx[i], ty[i] = x[j], y[j]
	}
	inner, err := fit(tx, ty)
	if err != nil {
		return nil, fmt.Errorf("conformal: inner fit: %w", err)
	}

	res := make([]float64, len(calIdx))
	for i, j := range calIdx {
		res[i] = math.Abs(y[j] - inner.Predict(x[j]))
	}
	sort.Float64s(res)
	m := len(res)
	k := int(math.Ceil((1 - cfg.Lambda) * float64(m+1)))
	if k > m {
		// Not enough calibration points for the requested level: the
		// interval must be conservative (infinite in theory); we use the
		// maximum residual, the standard finite-sample fallback.
		k = m
	}
	return &Model{inner: inner, radius: res[k-1], lambda: cfg.Lambda, nCalib: m}, nil
}

// distinctGroups returns the distinct labels in first-appearance order.
func distinctGroups(groups []int) []int {
	if groups == nil {
		return nil
	}
	seen := make(map[int]bool)
	var out []int
	for _, g := range groups {
		if !seen[g] {
			seen[g] = true
			out = append(out, g)
		}
	}
	return out
}

// Restore reconstructs a calibrated model from persisted parameters —
// the inverse of the accessors below, used by the snapshot layer. It
// performs no validation beyond what the accessors guarantee; callers
// (core.FromState) validate the decoded state before restoring.
func Restore(inner Predictor, radius, lambda float64, nCalib int) *Model {
	return &Model{inner: inner, radius: radius, lambda: lambda, nCalib: nCalib}
}

// Inner returns the wrapped point predictor, so the snapshot layer can
// reach the mixture components behind the conformal wrapper.
func (m *Model) Inner() Predictor { return m.inner }

// Ensemble builds the multi-split mean-ensemble point predictor over
// parts — the predictor shape FitMultiSplit produces — so a snapshot of a
// multi-split model can be reassembled.
func Ensemble(parts []Predictor) Predictor {
	cp := make([]Predictor, len(parts))
	copy(cp, parts)
	return ensemblePredictor{parts: cp}
}

// EnsembleParts returns the member predictors when p is a multi-split
// ensemble, and (nil, false) for any other predictor.
func EnsembleParts(p Predictor) ([]Predictor, bool) {
	e, ok := p.(ensemblePredictor)
	if !ok {
		return nil, false
	}
	out := make([]Predictor, len(e.parts))
	copy(out, e.parts)
	return out, true
}

// Radius returns R̃_λ, the half-width added around point estimates.
func (m *Model) Radius() float64 { return m.radius }

// Lambda returns the configured miscoverage level.
func (m *Model) Lambda() float64 { return m.lambda }

// CalibrationSize returns the number of calibration residuals used.
func (m *Model) CalibrationSize() int { return m.nCalib }

// Predict performs Algorithm 1 stage 6: Ĉ(x) = [f̂(x) − R̃_λ, f̂(x) + R̃_λ].
func (m *Model) Predict(x []float64) Interval {
	p := m.inner.Predict(x)
	return Interval{Point: p, Lo: p - m.radius, Hi: p + m.radius}
}

// FitMultiSplit runs nSplits independent split-conformal fits with
// different split seeds and combines them by the median radius and the
// ensemble-mean point predictor — the multi-split stabilization of Solari
// & Djordjilović the paper cites [32]. It trades nSplits× training cost
// for a radius that does not hinge on one lucky or unlucky split.
func FitMultiSplit(x [][]float64, y []float64, groups []int, fit Fitter, cfg Config, nSplits int) (*Model, error) {
	if nSplits < 1 {
		nSplits = 1
	}
	models := make([]*Model, 0, nSplits)
	radii := make([]float64, 0, nSplits)
	for s := 0; s < nSplits; s++ {
		c := cfg
		c.Seed = cfg.Seed + int64(s)*1_000_003
		m, err := FitGrouped(x, y, groups, fit, c)
		if err != nil {
			return nil, err
		}
		models = append(models, m)
		radii = append(radii, m.radius)
	}
	sort.Float64s(radii)
	// True median: for an even number of splits the two middle radii are
	// averaged — indexing radii[n/2] alone picks the *upper* middle
	// element and biases the combined radius wide.
	median := radii[len(radii)/2]
	if n := len(radii); n%2 == 0 {
		median = (radii[n/2-1] + radii[n/2]) / 2
	}
	inner := ensemblePredictor{parts: make([]Predictor, len(models))}
	for i, m := range models {
		inner.parts[i] = m.inner
	}
	var nCal int
	for _, m := range models {
		nCal += m.nCalib
	}
	return &Model{inner: inner, radius: median, lambda: models[0].lambda, nCalib: nCal / len(models)}, nil
}

// ensemblePredictor averages the point predictions of the split models.
type ensemblePredictor struct {
	parts []Predictor
}

// Predict implements Predictor.
func (e ensemblePredictor) Predict(x []float64) float64 {
	var s float64
	for _, p := range e.parts {
		s += p.Predict(x)
	}
	return s / float64(len(e.parts))
}

// Coverage returns the fraction of (x, y) pairs whose interval contains y,
// used to validate the ≥ 1−λ guarantee empirically (§VI-D).
func (m *Model) Coverage(x [][]float64, y []float64) float64 {
	if len(x) == 0 {
		return math.NaN()
	}
	hits := 0
	for i := range x {
		if m.Predict(x[i]).Contains(y[i]) {
			hits++
		}
	}
	return float64(hits) / float64(len(x))
}
