package conformal

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
)

// meanPredictor predicts the training mean regardless of x.
type meanPredictor struct{ mean float64 }

func (m meanPredictor) Predict(x []float64) float64 { return m.mean }

func meanFitter(x [][]float64, y []float64) (Predictor, error) {
	var s float64
	for _, v := range y {
		s += v
	}
	return meanPredictor{mean: s / float64(len(y))}, nil
}

// linFitter fits 1D OLS y = a + b·x.
func linFitter(x [][]float64, y []float64) (Predictor, error) {
	var sx, sy, sxx, sxy float64
	n := float64(len(x))
	for i := range x {
		sx += x[i][0]
		sy += y[i]
		sxx += x[i][0] * x[i][0]
		sxy += x[i][0] * y[i]
	}
	b := (n*sxy - sx*sy) / (n*sxx - sx*sx)
	a := (sy - b*sx) / n
	return linPredictor{a, b}, nil
}

type linPredictor struct{ a, b float64 }

func (l linPredictor) Predict(x []float64) float64 { return l.a + l.b*x[0] }

func genLinear(n int, noise float64, seed int64) (x [][]float64, y []float64) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		xv := rng.NormFloat64()
		x = append(x, []float64{xv})
		y = append(y, 2+3*xv+noise*rng.NormFloat64())
	}
	return x, y
}

func TestFitErrors(t *testing.T) {
	x, y := genLinear(10, 0.1, 1)
	if _, err := Fit(x[:3], y[:3], meanFitter, Config{}); !errors.Is(err, ErrTooFewSamples) {
		t.Errorf("tiny data error = %v", err)
	}
	if _, err := Fit(x, y[:5], meanFitter, Config{}); err == nil {
		t.Error("length mismatch accepted")
	}
	failing := func(x [][]float64, y []float64) (Predictor, error) {
		return nil, errors.New("boom")
	}
	if _, err := Fit(x, y, failing, Config{}); err == nil {
		t.Error("inner-fit failure swallowed")
	}
	if _, err := FitGrouped(x, y, []int{1, 2}, meanFitter, Config{}); err == nil {
		t.Error("group length mismatch accepted")
	}
}

func TestIntervalShape(t *testing.T) {
	x, y := genLinear(200, 0.5, 2)
	m, err := Fit(x, y, linFitter, Config{Lambda: 0.1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	iv := m.Predict([]float64{0.7})
	if iv.Lo > iv.Point || iv.Hi < iv.Point {
		t.Errorf("interval %v not centered on point", iv)
	}
	if math.Abs(iv.Width()-2*m.Radius()) > 1e-12 {
		t.Errorf("width %g != 2·radius %g", iv.Width(), m.Radius())
	}
	if !iv.Contains(iv.Point) {
		t.Error("interval excludes its own point")
	}
	if m.Lambda() != 0.1 {
		t.Errorf("Lambda = %g", m.Lambda())
	}
}

// TestCoverageGuarantee: on exchangeable data the empirical coverage of
// fresh test points must be ≥ 1−λ up to binomial fluctuation. This is the
// package's core statistical property.
func TestCoverageGuarantee(t *testing.T) {
	trials := 30
	lambda := 0.1
	covSum := 0.0
	for trial := 0; trial < trials; trial++ {
		x, y := genLinear(300, 1.0, int64(100+trial))
		tx, ty := genLinear(200, 1.0, int64(900+trial))
		m, err := Fit(x, y, linFitter, Config{Lambda: lambda, Seed: int64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		covSum += m.Coverage(tx, ty)
	}
	avg := covSum / float64(trials)
	if avg < 1-lambda-0.03 {
		t.Errorf("average coverage %.3f below nominal %.2f", avg, 1-lambda)
	}
	// Not absurdly conservative either (should not be ≈1 at λ=0.1 with
	// this much calibration data).
	if avg > 0.99 {
		t.Errorf("average coverage %.3f suspiciously conservative", avg)
	}
}

func TestRadiusIsCalibrationQuantile(t *testing.T) {
	// With a mean predictor and known residuals, the radius must be the
	// ⌈(1−λ)(m+1)⌉-th smallest calibration residual.
	x, y := genLinear(100, 2.0, 5)
	cfg := Config{Lambda: 0.2, CalibFraction: 0.5, Seed: 6}
	m, err := Fit(x, y, meanFitter, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Recompute expected radius by replaying the split.
	idx := rand.New(rand.NewSource(cfg.Seed)).Perm(len(x))
	nCal := int(math.Round(0.5 * float64(len(x))))
	calIdx, trainIdx := idx[:nCal], idx[nCal:]
	var mean float64
	for _, j := range trainIdx {
		mean += y[j]
	}
	mean /= float64(len(trainIdx))
	res := make([]float64, len(calIdx))
	for i, j := range calIdx {
		res[i] = math.Abs(y[j] - mean)
	}
	sort.Float64s(res)
	k := int(math.Ceil((1 - cfg.Lambda) * float64(len(res)+1)))
	if k > len(res) {
		k = len(res)
	}
	if math.Abs(m.Radius()-res[k-1]) > 1e-12 {
		t.Errorf("radius = %g, want %g", m.Radius(), res[k-1])
	}
	if m.CalibrationSize() != nCal {
		t.Errorf("calibration size = %d, want %d", m.CalibrationSize(), nCal)
	}
}

func TestSmallerLambdaWidensInterval(t *testing.T) {
	x, y := genLinear(400, 1.0, 7)
	tight, err := Fit(x, y, linFitter, Config{Lambda: 0.2, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	wide, err := Fit(x, y, linFitter, Config{Lambda: 0.01, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if wide.Radius() < tight.Radius() {
		t.Errorf("λ=0.01 radius %g < λ=0.2 radius %g", wide.Radius(), tight.Radius())
	}
}

func TestGroupedSplitHoldsOutWholeGroups(t *testing.T) {
	// Track which samples the fitter sees; no calibration group may leak
	// into training.
	n := 120
	x := make([][]float64, n)
	y := make([]float64, n)
	groups := make([]int, n)
	rng := rand.New(rand.NewSource(9))
	for i := range x {
		x[i] = []float64{rng.NormFloat64()}
		y[i] = rng.NormFloat64()
		groups[i] = i % 6
	}
	var seen map[float64]bool
	spy := func(tx [][]float64, ty []float64) (Predictor, error) {
		seen = make(map[float64]bool, len(tx))
		for _, row := range tx {
			seen[row[0]] = true
		}
		return meanPredictor{}, nil
	}
	if _, err := FitGrouped(x, y, groups, spy, Config{CalibFraction: 0.34, Seed: 10}); err != nil {
		t.Fatal(err)
	}
	// Determine which groups were (partially) seen in training; each
	// group must be entirely seen or entirely unseen.
	groupSeen := map[int]int{}
	groupTotal := map[int]int{}
	for i := range x {
		groupTotal[groups[i]]++
		if seen[x[i][0]] {
			groupSeen[groups[i]]++
		}
	}
	calGroups := 0
	for g, total := range groupTotal {
		got := groupSeen[g]
		if got != 0 && got != total {
			t.Fatalf("group %d split across train/calibration (%d/%d)", g, got, total)
		}
		if got == 0 {
			calGroups++
		}
	}
	if calGroups != 2 { // 34% of 6 groups ≈ 2
		t.Errorf("held-out groups = %d, want 2", calGroups)
	}
}

func TestGroupedFallsBackWithOneGroup(t *testing.T) {
	x, y := genLinear(50, 1, 11)
	groups := make([]int, len(x)) // all the same
	m, err := FitGrouped(x, y, groups, meanFitter, Config{Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	if m.Radius() <= 0 {
		t.Error("row-split fallback produced zero radius")
	}
}

func TestCoverageEmptyInput(t *testing.T) {
	x, y := genLinear(50, 1, 13)
	m, err := Fit(x, y, meanFitter, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(m.Coverage(nil, nil)) {
		t.Error("empty coverage not NaN")
	}
}

func TestMultiSplitStabilizesRadius(t *testing.T) {
	// Across many datasets, the variance of the multi-split radius must
	// be below the single-split radius variance.
	var singles, multis []float64
	for trial := 0; trial < 15; trial++ {
		x, y := genLinear(80, 1.0, int64(500+trial))
		s, err := Fit(x, y, linFitter, Config{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		m, err := FitMultiSplit(x, y, nil, linFitter, Config{Seed: 1}, 7)
		if err != nil {
			t.Fatal(err)
		}
		singles = append(singles, s.Radius())
		multis = append(multis, m.Radius())
	}
	varOf := func(xs []float64) float64 {
		var mean float64
		for _, v := range xs {
			mean += v
		}
		mean /= float64(len(xs))
		var s float64
		for _, v := range xs {
			s += (v - mean) * (v - mean)
		}
		return s / float64(len(xs))
	}
	if varOf(multis) > varOf(singles) {
		t.Errorf("multi-split radius variance %.4g not below single-split %.4g",
			varOf(multis), varOf(singles))
	}
}

func TestMultiSplitCoverage(t *testing.T) {
	x, y := genLinear(300, 1.0, 42)
	tx, ty := genLinear(200, 1.0, 43)
	m, err := FitMultiSplit(x, y, nil, linFitter, Config{Lambda: 0.1, Seed: 2}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if cov := m.Coverage(tx, ty); cov < 0.85 {
		t.Errorf("multi-split coverage %.3f", cov)
	}
	// nSplits < 1 degenerates to a single split.
	if _, err := FitMultiSplit(x, y, nil, linFitter, Config{Seed: 3}, 0); err != nil {
		t.Errorf("nSplits=0: %v", err)
	}
}

// TestMultiSplitEvenMedianAveragesMiddle: with an even number of splits
// the combined radius must be the average of the two middle per-split
// radii. The old radii[len/2] indexing returned the *upper* middle
// element, biasing every even-nSplits model systematically wide.
func TestMultiSplitEvenMedianAveragesMiddle(t *testing.T) {
	x, y := genLinear(120, 1.0, 77)
	cfg := Config{Seed: 9}

	// Reproduce the two per-split radii with the seed schedule
	// FitMultiSplit uses internally.
	var radii []float64
	for s := 0; s < 2; s++ {
		c := cfg
		c.Seed = cfg.Seed + int64(s)*1_000_003
		m, err := FitGrouped(x, y, nil, linFitter, c)
		if err != nil {
			t.Fatal(err)
		}
		radii = append(radii, m.Radius())
	}
	sort.Float64s(radii)
	if radii[0] == radii[1] {
		t.Fatalf("degenerate fixture: both split radii are %g; pick another seed", radii[0])
	}

	m, err := FitMultiSplit(x, y, nil, linFitter, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := (radii[0] + radii[1]) / 2
	if m.Radius() != want {
		t.Errorf("even-split radius = %g, want middle average %g (splits %g, %g)",
			m.Radius(), want, radii[0], radii[1])
	}
	if m.Radius() == radii[1] {
		t.Error("radius equals the upper middle element — the pre-fix bias")
	}
}
