package conformal

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// onlineFixture fits a multi-split model on y = Σx + noise(scale) and
// returns it with the generator, so drift tests can change the scale.
func onlineFixture(t *testing.T, seed int64, scale float64) (*Model, *rand.Rand) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := 600
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
		y[i] = x[i][0] + x[i][1] + scale*rng.NormFloat64()
	}
	m, err := FitMultiSplit(x, y, nil, fitMean, Config{Lambda: 0.1, Seed: seed}, 5)
	if err != nil {
		t.Fatal(err)
	}
	return m, rng
}

// fitMean is a deliberately simple inner fitter: ŷ(x) = Σx (the true
// signal), so calibration residuals are exactly the noise and the radius
// is interpretable.
func fitMean(x [][]float64, y []float64) (Predictor, error) {
	return sumPredictor{}, nil
}

type sumPredictor struct{}

func (sumPredictor) Predict(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

func feed(o *OnlineModel, rng *rand.Rand, n int, scale float64) (recals int, last OnlineStats) {
	for i := 0; i < n; i++ {
		x := []float64{rng.NormFloat64(), rng.NormFloat64()}
		y := x[0] + x[1] + scale*rng.NormFloat64()
		st, r := o.Observe(x, y)
		if r {
			recals++
		}
		last = st
	}
	return recals, last
}

// TestOnlineStableNoRecalibration: with in-distribution traffic the
// rolling coverage stays in band and the radius is never touched.
func TestOnlineStableNoRecalibration(t *testing.T) {
	m, rng := onlineFixture(t, 1, 0.5)
	o := NewOnline(m, OnlineConfig{Window: 300, Band: 0.06, MinObserve: 100, Cooldown: 100})
	r0 := o.Radius()
	recals, st := feed(o, rng, 2000, 0.5)
	if recals != 0 {
		t.Fatalf("in-distribution traffic caused %d recalibrations (final %+v)", recals, st)
	}
	if o.Radius() != r0 {
		t.Fatalf("radius moved without recalibration: %g -> %g", r0, o.Radius())
	}
	if !st.InBand() {
		t.Fatalf("stable stream ended out of band: %+v", st)
	}
}

// TestOnlineRecalibratesUnderDrift: quadrupling the noise scale drives
// coverage below the band; the tracker must recalibrate (widening the
// radius) and converge back into the band while the drifted regime
// continues.
func TestOnlineRecalibratesUnderDrift(t *testing.T) {
	m, rng := onlineFixture(t, 2, 0.5)
	o := NewOnline(m, OnlineConfig{Window: 300, Band: 0.05, MinObserve: 100, Cooldown: 100})
	r0 := o.Radius()
	if recals, _ := feed(o, rng, 500, 0.5); recals != 0 {
		t.Fatalf("warm-up recalibrated %d times", recals)
	}
	recals, st := feed(o, rng, 3000, 2.0)
	if recals == 0 {
		t.Fatalf("drifted stream never recalibrated: %+v", st)
	}
	if o.Radius() <= r0 {
		t.Fatalf("radius did not widen under 4x noise: %g -> %g", r0, o.Radius())
	}
	if !st.InBand() {
		t.Fatalf("coverage did not converge back into band after recalibration: %+v", st)
	}
}

// TestOnlineShrinksWhenOverCovered: the band is two-sided — a stream far
// quieter than calibration (coverage pinned at 1 above target+band) must
// shrink the radius rather than serve uselessly wide intervals forever.
func TestOnlineShrinksWhenOverCovered(t *testing.T) {
	m, rng := onlineFixture(t, 3, 2.0)
	o := NewOnline(m, OnlineConfig{Window: 300, Band: 0.03, MinObserve: 100, Cooldown: 100})
	r0 := o.Radius()
	recals, st := feed(o, rng, 2000, 0.2)
	if recals == 0 {
		t.Fatalf("over-covered stream never recalibrated: %+v", st)
	}
	if o.Radius() >= r0 {
		t.Fatalf("radius did not shrink on a quiet stream: %g -> %g", r0, o.Radius())
	}
}

// TestOnlineRecalibrationAccounting is the regression test for the
// coverage-accounting bug class: if recalibration updates the radius but
// leaves the window's hit verdicts scored against the OLD radius, the
// reported coverage stays below the band even though the new radius
// covers the window by construction, and the model re-triggers every
// cooldown. The correct behavior — window hits recomputed against the
// new radius — makes the post-recalibration coverage exactly the
// fraction of window residuals ≤ the new radius, which the (1−λ)(m+1)
// order statistic places at or above the target.
func TestOnlineRecalibrationAccounting(t *testing.T) {
	m, rng := onlineFixture(t, 4, 0.5)
	o := NewOnline(m, OnlineConfig{Window: 256, Band: 0.05, MinObserve: 128, Cooldown: 128})
	feed(o, rng, 300, 0.5)

	// Force a drift burst until the first recalibration fires, capturing
	// the stats returned BY that very Observe call.
	var at OnlineStats
	fired := false
	for i := 0; i < 5000 && !fired; i++ {
		x := []float64{rng.NormFloat64(), rng.NormFloat64()}
		y := x[0] + x[1] + 2.0*rng.NormFloat64()
		st, r := o.Observe(x, y)
		if r {
			at, fired = st, true
		}
	}
	if !fired {
		t.Fatal("drift never triggered a recalibration")
	}
	// The snapshot from the recalibrating call must already be scored
	// against the new radius: coverage >= target (the order statistic
	// guarantees ceil((1-λ)(m+1)) of m residuals are <= the radius, i.e.
	// coverage >= 1-λ exactly when k <= m), hence inside the band.
	if at.Coverage < at.Target {
		t.Fatalf("post-recalibration coverage %0.4f below target %0.4f: window hits were not rescored against the new radius", at.Coverage, at.Target)
	}
	if !at.InBand() {
		t.Fatalf("post-recalibration snapshot out of band: %+v", at)
	}

	// And the new radius must be exactly the (1−λ)(m+1) order statistic
	// of the window residuals — cross-check via an independent replay.
	st := o.Stats()
	cov := windowCoverageAt(o, st.Radius)
	if math.Abs(cov-st.Coverage) > 1e-12 {
		t.Fatalf("reported coverage %0.6f disagrees with recount %0.6f at radius %g", st.Coverage, cov, st.Radius)
	}
}

// windowCoverageAt recounts the rolling window hits from the raw
// residual ring at the given radius — an independent check that the
// incremental nHits bookkeeping matches a from-scratch recount.
func windowCoverageAt(o *OnlineModel, radius float64) float64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	hits := 0
	for i := 0; i < o.n; i++ {
		if o.resid[i] <= radius {
			hits++
		}
	}
	return float64(hits) / float64(o.n)
}

// TestOnlineQuantileMatchesOffline pins that the rolling recalibration
// uses the same order statistic as Fit: k = ⌈(1−λ)(m+1)⌉ capped at m.
func TestOnlineQuantileMatchesOffline(t *testing.T) {
	m, _ := onlineFixture(t, 5, 1.0)
	o := NewOnline(m, OnlineConfig{Window: 64, Band: 0.001, MinObserve: 64, Cooldown: 10_000})
	rng := rand.New(rand.NewSource(99))
	var resid []float64
	for i := 0; i < 64; i++ {
		x := []float64{rng.NormFloat64(), rng.NormFloat64()}
		y := x[0] + x[1] + 3.0*rng.NormFloat64()
		resid = append(resid, math.Abs(y-(x[0]+x[1])))
		o.Observe(x, y)
	}
	st := o.Stats()
	if st.Recalibrations == 0 {
		t.Fatal("tight band with drifted fill did not recalibrate")
	}
	sort.Float64s(resid)
	mm := len(resid)
	k := int(math.Ceil((1 - 0.1) * float64(mm+1)))
	if k > mm {
		k = mm
	}
	if st.Radius != resid[k-1] {
		t.Fatalf("online radius %g, want order statistic %g (k=%d of %d)", st.Radius, resid[k-1], k, mm)
	}
}

// TestOnlineCooldownPreventsThrash: one drift event inside a cooldown
// window yields at most ceil(n/cooldown) recalibrations, not one per
// observation.
func TestOnlineCooldownPreventsThrash(t *testing.T) {
	m, rng := onlineFixture(t, 6, 0.5)
	o := NewOnline(m, OnlineConfig{Window: 200, Band: 0.05, MinObserve: 100, Cooldown: 150})
	feed(o, rng, 300, 0.5)
	recals, _ := feed(o, rng, 600, 2.5)
	if recals == 0 {
		t.Fatal("no recalibration under heavy drift")
	}
	if max := 600/150 + 1; recals > max {
		t.Fatalf("recalibrated %d times in 600 observations with cooldown 150 (max %d)", recals, max)
	}
}

// TestOnlineStateRoundTrip: extracting the tracker state and rebuilding
// from it must reproduce the stats exactly AND behave identically on all
// future observations — including after the ring has wrapped and a
// recalibration has moved the radius, the two regimes where a sloppy
// ring-unroll or a reset-to-offline-radius restore would diverge.
func TestOnlineStateRoundTrip(t *testing.T) {
	m, rng := onlineFixture(t, 7, 0.5)
	o := NewOnline(m, OnlineConfig{Window: 100, Band: 0.04, MinObserve: 50, Cooldown: 50})
	// Warm in-distribution, then drift so at least one recalibration fires
	// and the ring wraps (250 > Window).
	feed(o, rng, 100, 0.5)
	recals, _ := feed(o, rng, 150, 2.0)
	if recals == 0 {
		t.Fatal("fixture did not recalibrate; round-trip would not exercise the moved radius")
	}

	st := o.State()
	if len(st.Residuals) != 100 {
		t.Fatalf("state carries %d residuals, want full window 100", len(st.Residuals))
	}
	back, err := NewOnlineFromState(m, st)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := back.Stats(), o.Stats(); got != want {
		t.Fatalf("restored stats %+v != original %+v", got, want)
	}
	if back.Radius() != o.Radius() {
		t.Fatalf("restored radius %g != %g", back.Radius(), o.Radius())
	}

	// Same future stream into both must keep them in lockstep, including
	// any further recalibration decisions.
	futureRng := rand.New(rand.NewSource(77))
	for i := 0; i < 300; i++ {
		x := []float64{futureRng.NormFloat64(), futureRng.NormFloat64()}
		y := x[0] + x[1] + 2.0*futureRng.NormFloat64()
		so, ro := o.Observe(x, y)
		sb, rb := back.Observe(x, y)
		if so != sb || ro != rb {
			t.Fatalf("observation %d diverged: original (%+v, %v) vs restored (%+v, %v)", i, so, ro, sb, rb)
		}
	}
}

// TestOnlineStatePartialWindowRoundTrip covers the not-yet-wrapped ring:
// the chronological unroll is just [0, n).
func TestOnlineStatePartialWindowRoundTrip(t *testing.T) {
	m, rng := onlineFixture(t, 8, 0.5)
	o := NewOnline(m, OnlineConfig{Window: 200, Band: 0.05, MinObserve: 100, Cooldown: 100})
	feed(o, rng, 60, 0.5)
	st := o.State()
	if len(st.Residuals) != 60 {
		t.Fatalf("state carries %d residuals, want 60", len(st.Residuals))
	}
	back, err := NewOnlineFromState(m, st)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := back.Stats(), o.Stats(); got != want {
		t.Fatalf("restored stats %+v != original %+v", got, want)
	}
}

// TestOnlineStateRejectsCorrupt: every invariant the restore validates.
func TestOnlineStateRejectsCorrupt(t *testing.T) {
	m, rng := onlineFixture(t, 9, 0.5)
	o := NewOnline(m, OnlineConfig{Window: 50, Band: 0.05, MinObserve: 25, Cooldown: 25})
	feed(o, rng, 80, 0.5)
	good := o.State()

	mutate := func(f func(*OnlineState)) OnlineState {
		st := good
		st.Residuals = append([]float64(nil), good.Residuals...)
		f(&st)
		return st
	}
	cases := map[string]OnlineState{
		"overfull window":    mutate(func(st *OnlineState) { st.Config.Window = 10 }),
		"negative radius":    mutate(func(st *OnlineState) { st.Radius = -1 }),
		"NaN radius":         mutate(func(st *OnlineState) { st.Radius = math.NaN() }),
		"NaN residual":       mutate(func(st *OnlineState) { st.Residuals[3] = math.NaN() }),
		"negative residual":  mutate(func(st *OnlineState) { st.Residuals[3] = -0.5 }),
		"observed too small": mutate(func(st *OnlineState) { st.Observed = 10 }),
		"negative recals":    mutate(func(st *OnlineState) { st.Recalibrations = -1 }),
		"lastRecal ahead":    mutate(func(st *OnlineState) { st.LastRecal = st.Observed + 1 }),
	}
	for name, st := range cases {
		if _, err := NewOnlineFromState(m, st); err == nil {
			t.Errorf("%s: restore accepted corrupt state", name)
		}
	}
	if _, err := NewOnlineFromState(m, good); err != nil {
		t.Errorf("unmutated state rejected: %v", err)
	}
}
