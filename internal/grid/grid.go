// Package grid provides the data-model vocabulary of the paper: buffers,
// fields, time-steps, datasets, and the block tiling used by all
// compressibility predictors.
//
// A Buffer is a single 2D array of float64 belonging to one field and one
// time-step of a dataset (paper §II). Native 3D volumes are converted to 2D
// buffers by slicing along the slowest-varying dimension (paper §VI-A1).
package grid

import (
	"fmt"
	"math"

	"github.com/crestlab/crest/internal/crerr"
)

// Buffer is a dense, row-major 2D array identified by dataset, field and
// time-step. It is the atomic unit of compression and prediction.
type Buffer struct {
	// Dataset, Field and Step identify the buffer within a run (§II).
	Dataset string
	Field   string
	Step    int

	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewBuffer allocates a zeroed rows×cols buffer.
func NewBuffer(rows, cols int) *Buffer {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("grid: invalid buffer shape %dx%d", rows, cols))
	}
	return &Buffer{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps data (row-major, len rows*cols) in a Buffer without
// copying. The caller must not alias data afterwards.
func FromSlice(rows, cols int, data []float64) (*Buffer, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("grid: invalid shape %dx%d", rows, cols)
	}
	if len(data) != rows*cols {
		return nil, fmt.Errorf("grid: data length %d != %d*%d", len(data), rows, cols)
	}
	return &Buffer{Rows: rows, Cols: cols, Data: data}, nil
}

// At returns the element at row r, column c.
func (b *Buffer) At(r, c int) float64 { return b.Data[r*b.Cols+c] }

// Set assigns the element at row r, column c.
func (b *Buffer) Set(r, c int, v float64) { b.Data[r*b.Cols+c] = v }

// Len returns the number of elements.
func (b *Buffer) Len() int { return len(b.Data) }

// SizeBytes returns the uncompressed size in bytes (8 bytes per element).
func (b *Buffer) SizeBytes() int { return 8 * len(b.Data) }

// Clone returns a deep copy of the buffer.
func (b *Buffer) Clone() *Buffer {
	c := *b
	c.Data = make([]float64, len(b.Data))
	copy(c.Data, b.Data)
	return &c
}

// Range returns the minimum and maximum values. For an empty buffer both
// are zero.
func (b *Buffer) Range() (lo, hi float64) {
	if len(b.Data) == 0 {
		return 0, 0
	}
	lo, hi = b.Data[0], b.Data[0]
	for _, v := range b.Data[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// MaxAbsDiff returns max_i |b_i - o_i|, the metric bounded by error-bounded
// compressors. It returns +Inf when shapes differ.
func (b *Buffer) MaxAbsDiff(o *Buffer) float64 {
	if b.Rows != o.Rows || b.Cols != o.Cols {
		return math.Inf(1)
	}
	var m float64
	for i, v := range b.Data {
		d := math.Abs(v - o.Data[i])
		if d > m {
			m = d
		}
	}
	return m
}

// ValidationPolicy bounds what buffer data the estimation pipeline
// accepts at its public boundaries.
type ValidationPolicy struct {
	// MaxNonFiniteFraction is the tolerated fraction of NaN/±Inf values
	// in [0, 1]. The zero value rejects any non-finite element.
	MaxNonFiniteFraction float64
}

// DefaultValidation rejects any non-finite element: the statistical
// predictors and the regression mixture have no meaningful NaN semantics,
// so by default a single poisoned value fails fast with a typed error
// instead of silently producing NaN features.
var DefaultValidation = ValidationPolicy{}

// Validate checks the buffer's shape invariants and applies the policy's
// non-finite data bound. Shape violations wrap crerr.ErrInvalidBuffer;
// data violations wrap crerr.ErrNonFiniteData. A valid buffer makes every
// grid accessor (At, Blocking, Vec) panic-free, which is how panics from
// malformed buffers are converted to errors at the API boundary.
func (b *Buffer) Validate(p ValidationPolicy) error {
	if b == nil {
		return fmt.Errorf("%w: nil buffer", crerr.ErrInvalidBuffer)
	}
	if b.Rows <= 0 || b.Cols <= 0 {
		return fmt.Errorf("%w: shape %dx%d", crerr.ErrInvalidBuffer, b.Rows, b.Cols)
	}
	if len(b.Data) != b.Rows*b.Cols {
		return fmt.Errorf("%w: data length %d != %d*%d", crerr.ErrInvalidBuffer, len(b.Data), b.Rows, b.Cols)
	}
	bad := 0
	for _, v := range b.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			bad++
		}
	}
	if bad > 0 {
		frac := float64(bad) / float64(len(b.Data))
		if frac > p.MaxNonFiniteFraction {
			return fmt.Errorf("%w: %d of %d values (%.3g%% > %.3g%% allowed)",
				crerr.ErrNonFiniteData, bad, len(b.Data), 100*frac, 100*p.MaxNonFiniteFraction)
		}
	}
	return nil
}

// Sanitized returns the buffer itself when it contains no non-finite
// values, or a deep copy with every NaN/±Inf replaced by the mean of the
// finite values (zero when none exist). It is the degradation path for
// callers that opt into a tolerant ValidationPolicy.
func (b *Buffer) Sanitized() *Buffer {
	bad := 0
	var sum float64
	n := 0
	for _, v := range b.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			bad++
		} else {
			sum += v
			n++
		}
	}
	if bad == 0 {
		return b
	}
	fill := 0.0
	if n > 0 {
		fill = sum / float64(n)
	}
	c := b.Clone()
	for i, v := range c.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			c.Data[i] = fill
		}
	}
	return c
}

// Volume is a dense, row-major 3D array (slowest dimension first). Volumes
// are sliced to 2D buffers for prediction and compression.
type Volume struct {
	Dataset string
	Field   string

	NZ, NY, NX int
	Data       []float64 // len == NZ*NY*NX, z-major
}

// NewVolume allocates a zeroed nz×ny×nx volume.
func NewVolume(nz, ny, nx int) *Volume {
	if nz <= 0 || ny <= 0 || nx <= 0 {
		panic(fmt.Sprintf("grid: invalid volume shape %dx%dx%d", nz, ny, nx))
	}
	return &Volume{NZ: nz, NY: ny, NX: nx, Data: make([]float64, nz*ny*nx)}
}

// At returns the element at (z, y, x).
func (v *Volume) At(z, y, x int) float64 { return v.Data[(z*v.NY+y)*v.NX+x] }

// Set assigns the element at (z, y, x).
func (v *Volume) Set(z, y, x int, val float64) { v.Data[(z*v.NY+y)*v.NX+x] = val }

// Validate checks the volume's shape invariants and applies the policy's
// non-finite bound, mirroring Buffer.Validate.
func (v *Volume) Validate(p ValidationPolicy) error {
	if v == nil {
		return fmt.Errorf("%w: nil volume", crerr.ErrInvalidBuffer)
	}
	if v.NZ <= 0 || v.NY <= 0 || v.NX <= 0 {
		return fmt.Errorf("%w: volume shape %dx%dx%d", crerr.ErrInvalidBuffer, v.NZ, v.NY, v.NX)
	}
	if len(v.Data) != v.NZ*v.NY*v.NX {
		return fmt.Errorf("%w: volume data length %d != %d*%d*%d",
			crerr.ErrInvalidBuffer, len(v.Data), v.NZ, v.NY, v.NX)
	}
	probe := Buffer{Rows: v.NZ * v.NY, Cols: v.NX, Data: v.Data}
	return probe.Validate(p)
}

// Slice returns the z-th 2D slice as a buffer sharing the volume's storage.
// Slicing along the slowest dimension mirrors the paper's conversion of 3D
// SDRBench data to 2D buffers (§VI-A1).
func (v *Volume) Slice(z int) *Buffer {
	if z < 0 || z >= v.NZ {
		panic(fmt.Sprintf("grid: slice %d out of range [0,%d)", z, v.NZ))
	}
	return &Buffer{
		Dataset: v.Dataset,
		Field:   v.Field,
		Step:    z,
		Rows:    v.NY,
		Cols:    v.NX,
		Data:    v.Data[z*v.NY*v.NX : (z+1)*v.NY*v.NX],
	}
}

// Slices returns all NZ slices of the volume.
func (v *Volume) Slices() []*Buffer {
	out := make([]*Buffer, v.NZ)
	for z := 0; z < v.NZ; z++ {
		out[z] = v.Slice(z)
	}
	return out
}

// Field groups the buffers of one physical quantity across time-steps.
type Field struct {
	Dataset string
	Name    string
	Buffers []*Buffer
}

// Dataset is all data from one run of an application: a set of fields.
type Dataset struct {
	Name   string
	Fields []*Field
}

// Field returns the named field, or nil when absent.
func (d *Dataset) Field(name string) *Field {
	for _, f := range d.Fields {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// FieldNames lists field names in declaration order.
func (d *Dataset) FieldNames() []string {
	names := make([]string, len(d.Fields))
	for i, f := range d.Fields {
		names[i] = f.Name
	}
	return names
}

// Buffers returns every buffer of every field, field-major.
func (d *Dataset) Buffers() []*Buffer {
	var out []*Buffer
	for _, f := range d.Fields {
		out = append(out, f.Buffers...)
	}
	return out
}

// ErrNotTileable reports a buffer whose dimensions are not divisible by the
// requested block size. It is classified under crerr.ErrInvalidBuffer: a
// buffer too small for the configured blocking is an invalid input to the
// predictor pipeline.
var ErrNotTileable = fmt.Errorf("%w: buffer dimensions not divisible by block size", crerr.ErrInvalidBuffer)

// Blocking is the decomposition of a buffer into B = Br×Bc spatially
// connected k×k blocks (§IV-A). Block b = r*Bc + c covers rows
// [r*k,(r+1)*k) and columns [c*k,(c+1)*k).
type Blocking struct {
	K      int // block edge length
	Br, Bc int // rows and columns of blocks
	buf    *Buffer
}

// NewBlocking tiles buf into k×k blocks. The buffer is cropped to the
// largest multiple of k in each dimension, matching the paper's row-wise
// division of X ∈ R^{p×p} into B blocks with p² = B·k².
func NewBlocking(buf *Buffer, k int) (*Blocking, error) {
	t, err := MakeBlocking(buf, k)
	if err != nil {
		return nil, err
	}
	return &t, nil
}

// MakeBlocking is NewBlocking returning the Blocking by value, so
// zero-allocation hot paths (the pooled predictor scratch) can tile a
// buffer without the pointer escaping to the heap.
func MakeBlocking(buf *Buffer, k int) (Blocking, error) {
	if k <= 0 {
		return Blocking{}, fmt.Errorf("grid: invalid block size %d", k)
	}
	br, bc := buf.Rows/k, buf.Cols/k
	if br == 0 || bc == 0 {
		return Blocking{}, fmt.Errorf("%w: %dx%d buffer with k=%d", ErrNotTileable, buf.Rows, buf.Cols, k)
	}
	return Blocking{K: k, Br: br, Bc: bc, buf: buf}, nil
}

// NumBlocks returns B = Br*Bc.
func (t *Blocking) NumBlocks() int { return t.Br * t.Bc }

// BlockPos returns the (row, col) block coordinates of block b.
func (t *Blocking) BlockPos(b int) (br, bc int) { return b / t.Bc, b % t.Bc }

// ManhattanDist returns the Manhattan distance between the locations of
// blocks a and b, the D^s_{b,b'} term of the paper's inter-block weights.
func (t *Blocking) ManhattanDist(a, b int) float64 {
	ar, ac := t.BlockPos(a)
	br, bc := t.BlockPos(b)
	return math.Abs(float64(ar-br)) + math.Abs(float64(ac-bc))
}

// Vec copies block b into dst (len ≥ k²) row-wise and returns dst[:k²],
// producing the vectorized block X^b = vec(X_b) of §IV-A. When dst is nil a
// fresh slice is allocated.
func (t *Blocking) Vec(b int, dst []float64) []float64 {
	k := t.K
	if dst == nil {
		dst = make([]float64, k*k)
	}
	dst = dst[:k*k]
	br, bc := t.BlockPos(b)
	r0, c0 := br*k, bc*k
	for r := 0; r < k; r++ {
		row := t.buf.Data[(r0+r)*t.buf.Cols+c0 : (r0+r)*t.buf.Cols+c0+k]
		copy(dst[r*k:(r+1)*k], row)
	}
	return dst
}

// VecAll vectorizes every block, returning a B×k² row-major matrix backed
// by one allocation.
func (t *Blocking) VecAll() [][]float64 {
	return t.VecAllInto(nil, nil)
}

// VecAllInto is VecAll with caller-provided storage: rows (the B slice
// headers) and backing (the B·k² element array) are reused when their
// capacity suffices and reallocated otherwise, so pooled callers
// vectorize without allocating per call. Either argument may be nil.
func (t *Blocking) VecAllInto(rows [][]float64, backing []float64) [][]float64 {
	b := t.NumBlocks()
	k2 := t.K * t.K
	if cap(backing) < b*k2 {
		backing = make([]float64, b*k2)
	}
	backing = backing[:b*k2]
	if cap(rows) < b {
		rows = make([][]float64, b)
	}
	rows = rows[:b]
	for i := 0; i < b; i++ {
		rows[i] = backing[i*k2 : (i+1)*k2]
		t.Vec(i, rows[i])
	}
	return rows
}
