// Package grid provides the data-model vocabulary of the paper: buffers,
// fields, time-steps, datasets, and the block tiling used by all
// compressibility predictors.
//
// A Buffer is a single 2D array of float64 belonging to one field and one
// time-step of a dataset (paper §II). Native 3D volumes are converted to 2D
// buffers by slicing along the slowest-varying dimension (paper §VI-A1).
package grid

import (
	"errors"
	"fmt"
	"math"
)

// Buffer is a dense, row-major 2D array identified by dataset, field and
// time-step. It is the atomic unit of compression and prediction.
type Buffer struct {
	// Dataset, Field and Step identify the buffer within a run (§II).
	Dataset string
	Field   string
	Step    int

	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewBuffer allocates a zeroed rows×cols buffer.
func NewBuffer(rows, cols int) *Buffer {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("grid: invalid buffer shape %dx%d", rows, cols))
	}
	return &Buffer{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps data (row-major, len rows*cols) in a Buffer without
// copying. The caller must not alias data afterwards.
func FromSlice(rows, cols int, data []float64) (*Buffer, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("grid: invalid shape %dx%d", rows, cols)
	}
	if len(data) != rows*cols {
		return nil, fmt.Errorf("grid: data length %d != %d*%d", len(data), rows, cols)
	}
	return &Buffer{Rows: rows, Cols: cols, Data: data}, nil
}

// At returns the element at row r, column c.
func (b *Buffer) At(r, c int) float64 { return b.Data[r*b.Cols+c] }

// Set assigns the element at row r, column c.
func (b *Buffer) Set(r, c int, v float64) { b.Data[r*b.Cols+c] = v }

// Len returns the number of elements.
func (b *Buffer) Len() int { return len(b.Data) }

// SizeBytes returns the uncompressed size in bytes (8 bytes per element).
func (b *Buffer) SizeBytes() int { return 8 * len(b.Data) }

// Clone returns a deep copy of the buffer.
func (b *Buffer) Clone() *Buffer {
	c := *b
	c.Data = make([]float64, len(b.Data))
	copy(c.Data, b.Data)
	return &c
}

// Range returns the minimum and maximum values. For an empty buffer both
// are zero.
func (b *Buffer) Range() (lo, hi float64) {
	if len(b.Data) == 0 {
		return 0, 0
	}
	lo, hi = b.Data[0], b.Data[0]
	for _, v := range b.Data[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// MaxAbsDiff returns max_i |b_i - o_i|, the metric bounded by error-bounded
// compressors. It returns +Inf when shapes differ.
func (b *Buffer) MaxAbsDiff(o *Buffer) float64 {
	if b.Rows != o.Rows || b.Cols != o.Cols {
		return math.Inf(1)
	}
	var m float64
	for i, v := range b.Data {
		d := math.Abs(v - o.Data[i])
		if d > m {
			m = d
		}
	}
	return m
}

// Volume is a dense, row-major 3D array (slowest dimension first). Volumes
// are sliced to 2D buffers for prediction and compression.
type Volume struct {
	Dataset string
	Field   string

	NZ, NY, NX int
	Data       []float64 // len == NZ*NY*NX, z-major
}

// NewVolume allocates a zeroed nz×ny×nx volume.
func NewVolume(nz, ny, nx int) *Volume {
	if nz <= 0 || ny <= 0 || nx <= 0 {
		panic(fmt.Sprintf("grid: invalid volume shape %dx%dx%d", nz, ny, nx))
	}
	return &Volume{NZ: nz, NY: ny, NX: nx, Data: make([]float64, nz*ny*nx)}
}

// At returns the element at (z, y, x).
func (v *Volume) At(z, y, x int) float64 { return v.Data[(z*v.NY+y)*v.NX+x] }

// Set assigns the element at (z, y, x).
func (v *Volume) Set(z, y, x int, val float64) { v.Data[(z*v.NY+y)*v.NX+x] = val }

// Slice returns the z-th 2D slice as a buffer sharing the volume's storage.
// Slicing along the slowest dimension mirrors the paper's conversion of 3D
// SDRBench data to 2D buffers (§VI-A1).
func (v *Volume) Slice(z int) *Buffer {
	if z < 0 || z >= v.NZ {
		panic(fmt.Sprintf("grid: slice %d out of range [0,%d)", z, v.NZ))
	}
	return &Buffer{
		Dataset: v.Dataset,
		Field:   v.Field,
		Step:    z,
		Rows:    v.NY,
		Cols:    v.NX,
		Data:    v.Data[z*v.NY*v.NX : (z+1)*v.NY*v.NX],
	}
}

// Slices returns all NZ slices of the volume.
func (v *Volume) Slices() []*Buffer {
	out := make([]*Buffer, v.NZ)
	for z := 0; z < v.NZ; z++ {
		out[z] = v.Slice(z)
	}
	return out
}

// Field groups the buffers of one physical quantity across time-steps.
type Field struct {
	Dataset string
	Name    string
	Buffers []*Buffer
}

// Dataset is all data from one run of an application: a set of fields.
type Dataset struct {
	Name   string
	Fields []*Field
}

// Field returns the named field, or nil when absent.
func (d *Dataset) Field(name string) *Field {
	for _, f := range d.Fields {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// FieldNames lists field names in declaration order.
func (d *Dataset) FieldNames() []string {
	names := make([]string, len(d.Fields))
	for i, f := range d.Fields {
		names[i] = f.Name
	}
	return names
}

// Buffers returns every buffer of every field, field-major.
func (d *Dataset) Buffers() []*Buffer {
	var out []*Buffer
	for _, f := range d.Fields {
		out = append(out, f.Buffers...)
	}
	return out
}

// ErrNotTileable reports a buffer whose dimensions are not divisible by the
// requested block size.
var ErrNotTileable = errors.New("grid: buffer dimensions not divisible by block size")

// Blocking is the decomposition of a buffer into B = Br×Bc spatially
// connected k×k blocks (§IV-A). Block b = r*Bc + c covers rows
// [r*k,(r+1)*k) and columns [c*k,(c+1)*k).
type Blocking struct {
	K      int // block edge length
	Br, Bc int // rows and columns of blocks
	buf    *Buffer
}

// NewBlocking tiles buf into k×k blocks. The buffer is cropped to the
// largest multiple of k in each dimension, matching the paper's row-wise
// division of X ∈ R^{p×p} into B blocks with p² = B·k².
func NewBlocking(buf *Buffer, k int) (*Blocking, error) {
	if k <= 0 {
		return nil, fmt.Errorf("grid: invalid block size %d", k)
	}
	br, bc := buf.Rows/k, buf.Cols/k
	if br == 0 || bc == 0 {
		return nil, fmt.Errorf("%w: %dx%d buffer with k=%d", ErrNotTileable, buf.Rows, buf.Cols, k)
	}
	return &Blocking{K: k, Br: br, Bc: bc, buf: buf}, nil
}

// NumBlocks returns B = Br*Bc.
func (t *Blocking) NumBlocks() int { return t.Br * t.Bc }

// BlockPos returns the (row, col) block coordinates of block b.
func (t *Blocking) BlockPos(b int) (br, bc int) { return b / t.Bc, b % t.Bc }

// ManhattanDist returns the Manhattan distance between the locations of
// blocks a and b, the D^s_{b,b'} term of the paper's inter-block weights.
func (t *Blocking) ManhattanDist(a, b int) float64 {
	ar, ac := t.BlockPos(a)
	br, bc := t.BlockPos(b)
	return math.Abs(float64(ar-br)) + math.Abs(float64(ac-bc))
}

// Vec copies block b into dst (len ≥ k²) row-wise and returns dst[:k²],
// producing the vectorized block X^b = vec(X_b) of §IV-A. When dst is nil a
// fresh slice is allocated.
func (t *Blocking) Vec(b int, dst []float64) []float64 {
	k := t.K
	if dst == nil {
		dst = make([]float64, k*k)
	}
	dst = dst[:k*k]
	br, bc := t.BlockPos(b)
	r0, c0 := br*k, bc*k
	for r := 0; r < k; r++ {
		row := t.buf.Data[(r0+r)*t.buf.Cols+c0 : (r0+r)*t.buf.Cols+c0+k]
		copy(dst[r*k:(r+1)*k], row)
	}
	return dst
}

// VecAll vectorizes every block, returning a B×k² row-major matrix backed
// by one allocation.
func (t *Blocking) VecAll() [][]float64 {
	b := t.NumBlocks()
	k2 := t.K * t.K
	backing := make([]float64, b*k2)
	out := make([][]float64, b)
	for i := 0; i < b; i++ {
		out[i] = backing[i*k2 : (i+1)*k2]
		t.Vec(i, out[i])
	}
	return out
}
