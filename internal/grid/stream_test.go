package grid

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"strings"
	"testing"

	"github.com/crestlab/crest/internal/crerr"
)

func testVolume(nz, ny, nx int) *Volume {
	v := NewVolume(nz, ny, nx)
	for i := range v.Data {
		v.Data[i] = math.Sin(float64(i)) * float64(1+i%5)
	}
	return v
}

func TestStreamRoundTripVolume(t *testing.T) {
	vol := testVolume(3, 5, 7)
	for _, chunkRows := range []int{1, 2, 5, 100} {
		var b bytes.Buffer
		if err := EncodeVolume(&b, vol, DTypeF64, chunkRows); err != nil {
			t.Fatal(err)
		}
		cr, err := NewChunkReader(bytes.NewReader(b.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		hdr := cr.Header()
		if hdr.Rows != 5 || hdr.Cols != 7 || hdr.Slices != 3 || hdr.DType != DTypeF64 {
			t.Fatalf("header %+v", hdr)
		}
		for z := 0; z < 3; z++ {
			buf, err := cr.ReadSlice()
			if err != nil {
				t.Fatalf("chunk=%d slice %d: %v", chunkRows, z, err)
			}
			if buf.Step != z {
				t.Errorf("slice %d: step %d", z, buf.Step)
			}
			want := vol.Slice(z)
			for i := range buf.Data {
				if math.Float64bits(buf.Data[i]) != math.Float64bits(want.Data[i]) {
					t.Fatalf("chunk=%d slice %d element %d differs", chunkRows, z, i)
				}
			}
		}
		if _, err := cr.ReadSlice(); err != io.EOF {
			t.Fatalf("chunk=%d: want io.EOF after last slice, got %v", chunkRows, err)
		}
		// The reader is idempotent at EOF.
		if _, err := cr.ReadSlice(); err != io.EOF {
			t.Fatalf("second read past EOF: %v", err)
		}
	}
}

func TestStreamFloat32Narrowing(t *testing.T) {
	buf := NewBuffer(2, 3)
	buf.Data = []float64{1.0 / 3.0, 2, math.Pi, -0.1, 1e-40, 3e38}
	var b bytes.Buffer
	if err := EncodeBuffer(&b, buf, DTypeF32, 0); err != nil {
		t.Fatal(err)
	}
	cr, err := NewChunkReader(bytes.NewReader(b.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := cr.ReadSlice()
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range buf.Data {
		want := float64(float32(v)) // narrow-then-widen is the contract
		if math.Float64bits(got.Data[i]) != math.Float64bits(want) {
			t.Errorf("element %d: got %g, want %g", i, got.Data[i], want)
		}
	}
}

func TestStreamHeaderRejections(t *testing.T) {
	valid := func() []byte {
		var b bytes.Buffer
		if err := EncodeBuffer(&b, NewBuffer(2, 2), DTypeF64, 0); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }},
		{"bad version", func(b []byte) []byte { b[4] = 9; return b }},
		{"bad dtype", func(b []byte) []byte { b[6] = 7; return b }},
		{"nonzero reserved", func(b []byte) []byte { b[7] = 1; return b }},
		{"zero rows", func(b []byte) []byte { binary.LittleEndian.PutUint32(b[8:12], 0); return b }},
		{"zero cols", func(b []byte) []byte { binary.LittleEndian.PutUint32(b[12:16], 0); return b }},
		{"short header", func(b []byte) []byte { return b[:10] }},
	}
	for _, tc := range cases {
		raw := tc.mutate(valid())
		if _, err := NewChunkReader(bytes.NewReader(raw)); !errors.Is(err, crerr.ErrStreamCorrupt) {
			t.Errorf("%s: want ErrStreamCorrupt, got %v", tc.name, err)
		}
	}
}

func TestStreamLimitsRejectHugeShapes(t *testing.T) {
	var raw [headerSize]byte
	copy(raw[0:4], streamMagic[:])
	binary.LittleEndian.PutUint16(raw[4:6], streamVersion)
	binary.LittleEndian.PutUint32(raw[8:12], 1<<30)  // rows
	binary.LittleEndian.PutUint32(raw[12:16], 1<<30) // cols
	binary.LittleEndian.PutUint32(raw[16:20], 1000)
	_, err := NewChunkReader(bytes.NewReader(raw[:]))
	if !errors.Is(err, crerr.ErrStreamCorrupt) {
		t.Fatalf("huge header admitted: %v", err)
	}
	// Tight custom limits reject a modest stream too.
	var b bytes.Buffer
	if err := EncodeBuffer(&b, NewBuffer(64, 64), DTypeF64, 0); err != nil {
		t.Fatal(err)
	}
	_, err = NewChunkReader(bytes.NewReader(b.Bytes()), StreamLimits{MaxCols: 32})
	if !errors.Is(err, crerr.ErrStreamCorrupt) {
		t.Fatalf("limit violation admitted: %v", err)
	}
}

func TestStreamChunkOverrunRejected(t *testing.T) {
	var b bytes.Buffer
	if err := EncodeBuffer(&b, NewBuffer(4, 4), DTypeF64, 2); err != nil {
		t.Fatal(err)
	}
	raw := b.Bytes()
	// Inflate the first chunk's row count past the declared total.
	binary.LittleEndian.PutUint32(raw[headerSize:headerSize+4], 99)
	cr, err := NewChunkReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	row := make([]float64, 4)
	if err := cr.ReadRow(row); !errors.Is(err, crerr.ErrStreamCorrupt) {
		t.Fatalf("overrunning chunk admitted: %v", err)
	}
}

func TestStreamOpenEndedUntilEOF(t *testing.T) {
	// Slices == 0: the writer declares no slice count; the reader must
	// deliver slices until a clean boundary EOF and reject a mid-slice
	// end.
	bufs := []*Buffer{NewBuffer(3, 4), NewBuffer(3, 4)}
	for i := range bufs[1].Data {
		bufs[1].Data[i] = float64(i)
	}
	var b bytes.Buffer
	cw, err := NewChunkWriter(&b, StreamHeader{DType: DTypeF64, Rows: 3, Cols: 4, Slices: 0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, buf := range bufs {
		if err := cw.WriteBuffer(buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	cr, err := NewChunkReader(bytes.NewReader(b.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		_, err := cr.ReadSlice()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 2 {
		t.Fatalf("read %d slices, want 2", n)
	}
	// Truncate to a mid-slice boundary: one whole chunk of 2 rows (the
	// payload ends cleanly between chunks but inside slice 2).
	trunc := b.Bytes()[:headerSize+(4+2*4*8)] // header + first 2-row chunk
	cr2, err := NewChunkReader(bytes.NewReader(trunc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cr2.ReadSlice(); !errors.Is(err, crerr.ErrStreamCorrupt) {
		t.Fatalf("mid-slice EOF admitted: %v", err)
	}
}

func TestChunkWriterContracts(t *testing.T) {
	var b bytes.Buffer
	cw, err := NewChunkWriter(&b, StreamHeader{DType: DTypeF64, Rows: 2, Cols: 2, Slices: 1}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := cw.WriteRow([]float64{1}); !errors.Is(err, crerr.ErrInvalidBuffer) {
		t.Errorf("short row admitted: %v", err)
	}
	if err := cw.WriteRow([]float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	// Close mid-slice must fail.
	if err := cw.Close(); !errors.Is(err, crerr.ErrInvalidBuffer) {
		t.Errorf("mid-slice close admitted: %v", err)
	}

	var b2 bytes.Buffer
	cw2, err := NewChunkWriter(&b2, StreamHeader{DType: DTypeF64, Rows: 1, Cols: 1, Slices: 1}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := cw2.WriteRow([]float64{1}); err != nil {
		t.Fatal(err)
	}
	if err := cw2.WriteRow([]float64{2}); !errors.Is(err, crerr.ErrInvalidBuffer) {
		t.Errorf("row past declared slices admitted: %v", err)
	}
	if err := cw2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWriteRowF32OverflowRejected is the regression test for the silent
// float32 narrowing overflow: before the fix, a finite float64 with
// |x| > MaxFloat32 was cast straight to ±Inf and written into the
// stream, surfacing only (if ever) as a reader-side validation failure
// far from the source. The writer must now reject the row with a typed
// error naming the coordinate, and genuinely non-finite inputs (NaN,
// ±Inf) must still pass through unchanged.
func TestWriteRowF32OverflowRejected(t *testing.T) {
	var b bytes.Buffer
	cw, err := NewChunkWriter(&b, StreamHeader{DType: DTypeF32, Rows: 2, Cols: 3, Slices: 2}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := cw.WriteRow([]float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	err = cw.WriteRow([]float64{1, 2, 1e39}) // finite in f64, Inf in f32
	if !errors.Is(err, crerr.ErrNonFiniteData) {
		t.Fatalf("overflowing row admitted: %v", err)
	}
	for _, frag := range []string{"slice 0", "row 1", "col 2", "1e+39"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("error %q does not name %q", err, frag)
		}
	}
	// -MaxFloat32 is exactly representable and must be admitted; the
	// first value past it must not.
	if err := cw.WriteRow([]float64{-math.MaxFloat32, 0, 0}); err != nil {
		t.Fatalf("-MaxFloat32 rejected: %v", err)
	}
	if err := cw.WriteRow([]float64{-math.Nextafter(math.MaxFloat32, math.Inf(1)) * 2, 0, 0}); !errors.Is(err, crerr.ErrNonFiniteData) {
		t.Fatalf("past-MaxFloat32 row admitted: %v", err)
	}

	// NaN and ±Inf inputs are already non-finite in both precisions:
	// they encode as before (readers gate them via ValidationPolicy).
	if err := cw.WriteRow([]float64{math.NaN(), math.Inf(1), math.Inf(-1)}); err != nil {
		t.Fatalf("non-finite passthrough rejected: %v", err)
	}
	// Rejected rows must not advance the row counter: exactly one more
	// row completes the declared 2×2-slice stream.
	if err := cw.WriteRow([]float64{4, 5, 6}); err != nil {
		t.Fatal(err)
	}
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestReadRow32NativeDecode checks that ReadRow32 yields the stored
// float32 bits without a widen/narrow round trip, and refuses float64
// streams.
func TestReadRow32NativeDecode(t *testing.T) {
	buf := NewBuffer(3, 4)
	for i := range buf.Data {
		buf.Data[i] = math.Sin(float64(i)) * 1e-3
	}
	var b bytes.Buffer
	if err := EncodeBuffer(&b, buf, DTypeF32, 2); err != nil {
		t.Fatal(err)
	}
	cr, err := NewChunkReader(bytes.NewReader(b.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float32, 4)
	for r := 0; r < 3; r++ {
		if err := cr.ReadRow32(dst); err != nil {
			t.Fatalf("row %d: %v", r, err)
		}
		for c, v := range dst {
			if want := float32(buf.Data[r*4+c]); math.Float32bits(v) != math.Float32bits(want) {
				t.Fatalf("row %d col %d: %v != %v", r, c, v, want)
			}
		}
	}
	if err := cr.ReadRow32(dst); err != io.EOF {
		t.Fatalf("want io.EOF, got %v", err)
	}

	var b64 bytes.Buffer
	if err := EncodeBuffer(&b64, buf, DTypeF64, 2); err != nil {
		t.Fatal(err)
	}
	cr64, err := NewChunkReader(bytes.NewReader(b64.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := cr64.ReadRow32(dst); !errors.Is(err, crerr.ErrInvalidBuffer) {
		t.Fatalf("ReadRow32 on f64 stream admitted: %v", err)
	}
}
