package grid

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewBufferShape(t *testing.T) {
	b := NewBuffer(3, 5)
	if b.Rows != 3 || b.Cols != 5 || len(b.Data) != 15 {
		t.Fatalf("unexpected shape %dx%d len %d", b.Rows, b.Cols, len(b.Data))
	}
	if b.Len() != 15 || b.SizeBytes() != 120 {
		t.Fatalf("Len=%d SizeBytes=%d", b.Len(), b.SizeBytes())
	}
}

func TestNewBufferPanicsOnInvalidShape(t *testing.T) {
	for _, sh := range [][2]int{{0, 1}, {1, 0}, {-1, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewBuffer(%d,%d) did not panic", sh[0], sh[1])
				}
			}()
			NewBuffer(sh[0], sh[1])
		}()
	}
}

func TestFromSlice(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5, 6}
	b, err := FromSlice(2, 3, data)
	if err != nil {
		t.Fatal(err)
	}
	if b.At(0, 2) != 3 || b.At(1, 0) != 4 {
		t.Errorf("row-major layout broken: %v", b.Data)
	}
	if _, err := FromSlice(2, 4, data); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := FromSlice(0, 3, nil); err == nil {
		t.Error("zero rows accepted")
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	b := NewBuffer(4, 7)
	b.Set(2, 5, 3.25)
	if got := b.At(2, 5); got != 3.25 {
		t.Errorf("At(2,5)=%g", got)
	}
	if b.Data[2*7+5] != 3.25 {
		t.Error("Set wrote to the wrong backing index")
	}
}

func TestClone(t *testing.T) {
	b := NewBuffer(2, 2)
	b.Set(0, 0, 1)
	c := b.Clone()
	c.Set(0, 0, 9)
	if b.At(0, 0) != 1 {
		t.Error("Clone shares backing storage")
	}
	if c.Rows != b.Rows || c.Cols != b.Cols {
		t.Error("Clone lost shape")
	}
}

func TestRange(t *testing.T) {
	b := NewBuffer(2, 3)
	copy(b.Data, []float64{3, -1, 4, 1, -5, 9})
	lo, hi := b.Range()
	if lo != -5 || hi != 9 {
		t.Errorf("Range = (%g, %g)", lo, hi)
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a := NewBuffer(2, 2)
	b := NewBuffer(2, 2)
	b.Data[3] = 0.5
	if d := a.MaxAbsDiff(b); d != 0.5 {
		t.Errorf("MaxAbsDiff = %g", d)
	}
	c := NewBuffer(2, 3)
	if d := a.MaxAbsDiff(c); !math.IsInf(d, 1) {
		t.Errorf("shape mismatch diff = %g, want +Inf", d)
	}
}

func TestVolumeSlicing(t *testing.T) {
	v := NewVolume(3, 4, 5)
	v.Dataset, v.Field = "ds", "f"
	v.Set(2, 1, 3, 7.5)
	s := v.Slice(2)
	if s.At(1, 3) != 7.5 {
		t.Error("slice does not view volume data")
	}
	if s.Dataset != "ds" || s.Field != "f" || s.Step != 2 {
		t.Errorf("slice identity %q/%q step %d", s.Dataset, s.Field, s.Step)
	}
	// Slices share storage with the volume.
	s.Set(0, 0, -1)
	if v.At(2, 0, 0) != -1 {
		t.Error("slice write did not reach volume")
	}
	if got := len(v.Slices()); got != 3 {
		t.Errorf("Slices() returned %d", got)
	}
}

func TestVolumeSliceOutOfRangePanics(t *testing.T) {
	v := NewVolume(2, 2, 2)
	defer func() {
		if recover() == nil {
			t.Error("Slice(5) did not panic")
		}
	}()
	v.Slice(5)
}

func TestDatasetLookup(t *testing.T) {
	ds := &Dataset{Name: "d", Fields: []*Field{
		{Name: "a", Buffers: []*Buffer{NewBuffer(2, 2)}},
		{Name: "b", Buffers: []*Buffer{NewBuffer(2, 2), NewBuffer(2, 2)}},
	}}
	if ds.Field("a") == nil || ds.Field("b") == nil {
		t.Fatal("Field lookup failed")
	}
	if ds.Field("zzz") != nil {
		t.Error("lookup of absent field returned non-nil")
	}
	names := ds.FieldNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("FieldNames = %v", names)
	}
	if got := len(ds.Buffers()); got != 3 {
		t.Errorf("Buffers() returned %d", got)
	}
}

func TestBlockingShapes(t *testing.T) {
	b := NewBuffer(16, 24)
	tl, err := NewBlocking(b, 8)
	if err != nil {
		t.Fatal(err)
	}
	if tl.Br != 2 || tl.Bc != 3 || tl.NumBlocks() != 6 {
		t.Errorf("blocking %dx%d (%d blocks)", tl.Br, tl.Bc, tl.NumBlocks())
	}
	// Non-multiple dims crop.
	b2 := NewBuffer(17, 25)
	tl2, err := NewBlocking(b2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if tl2.Br != 2 || tl2.Bc != 3 {
		t.Errorf("cropped blocking %dx%d", tl2.Br, tl2.Bc)
	}
}

func TestBlockingErrors(t *testing.T) {
	b := NewBuffer(4, 4)
	if _, err := NewBlocking(b, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewBlocking(b, 8); !errors.Is(err, ErrNotTileable) {
		t.Errorf("oversized k error = %v, want ErrNotTileable", err)
	}
}

func TestBlockPosAndManhattan(t *testing.T) {
	b := NewBuffer(16, 16)
	tl, err := NewBlocking(b, 8) // 2x2 blocks
	if err != nil {
		t.Fatal(err)
	}
	br, bc := tl.BlockPos(3)
	if br != 1 || bc != 1 {
		t.Errorf("BlockPos(3) = (%d,%d)", br, bc)
	}
	if d := tl.ManhattanDist(0, 3); d != 2 {
		t.Errorf("ManhattanDist(0,3) = %g", d)
	}
	if d := tl.ManhattanDist(1, 1); d != 0 {
		t.Errorf("self distance = %g", d)
	}
	if d := tl.ManhattanDist(0, 1); d != 1 {
		t.Errorf("adjacent distance = %g", d)
	}
}

func TestVecExtractsRowWise(t *testing.T) {
	b := NewBuffer(4, 4)
	for i := range b.Data {
		b.Data[i] = float64(i)
	}
	tl, err := NewBlocking(b, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Block 1 covers rows 0-1, cols 2-3: values 2,3,6,7.
	got := tl.Vec(1, nil)
	want := []float64{2, 3, 6, 7}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Vec(1) = %v, want %v", got, want)
		}
	}
	// Reuse destination.
	dst := make([]float64, 4)
	got2 := tl.Vec(2, dst)
	if &got2[0] != &dst[0] {
		t.Error("Vec did not reuse destination")
	}
}

func TestVecAllMatchesVec(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	b := NewBuffer(24, 16)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	tl, err := NewBlocking(b, 8)
	if err != nil {
		t.Fatal(err)
	}
	all := tl.VecAll()
	for i := 0; i < tl.NumBlocks(); i++ {
		single := tl.Vec(i, nil)
		for j := range single {
			if all[i][j] != single[j] {
				t.Fatalf("VecAll block %d differs at %d", i, j)
			}
		}
	}
}

// TestVecAllIntoReusesStorage: capacity-sufficient rows/backing must be
// reused in place (no allocation), undersized ones reallocated, and the
// vectorized contents must match VecAll either way.
func TestVecAllIntoReusesStorage(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	b := NewBuffer(24, 16)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	tl, err := NewBlocking(b, 8)
	if err != nil {
		t.Fatal(err)
	}
	want := tl.VecAll()
	nb := tl.NumBlocks()
	k2 := 64
	rows := make([][]float64, 0, nb+3)
	backing := make([]float64, 0, nb*k2+17)
	got := tl.VecAllInto(rows, backing)
	if &got[0][0] != &backing[:1][0] {
		t.Error("VecAllInto did not reuse backing storage")
	}
	if len(got) != nb {
		t.Fatalf("VecAllInto returned %d rows, want %d", len(got), nb)
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("VecAllInto block %d differs at %d", i, j)
			}
		}
	}
	// Undersized storage grows transparently.
	got2 := tl.VecAllInto(make([][]float64, 1), make([]float64, 3))
	for i := range want {
		for j := range want[i] {
			if got2[i][j] != want[i][j] {
				t.Fatalf("grown VecAllInto block %d differs at %d", i, j)
			}
		}
	}
}

// TestBlockingPartition checks by property that every grid cell inside the
// cropped region appears in exactly one block vector.
func TestBlockingPartition(t *testing.T) {
	prop := func(rowsRaw, colsRaw, kRaw uint8) bool {
		rows := int(rowsRaw%40) + 8
		cols := int(colsRaw%40) + 8
		k := int(kRaw%8) + 1
		b := NewBuffer(rows, cols)
		for i := range b.Data {
			b.Data[i] = float64(i)
		}
		tl, err := NewBlocking(b, k)
		if err != nil {
			return false
		}
		seen := map[float64]int{}
		for i := 0; i < tl.NumBlocks(); i++ {
			for _, v := range tl.Vec(i, nil) {
				seen[v]++
			}
		}
		if len(seen) != tl.NumBlocks()*k*k {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
