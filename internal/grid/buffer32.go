package grid

import (
	"fmt"
	"math"

	"github.com/crestlab/crest/internal/crerr"
)

// Buffer32 is the float32 sibling of Buffer: a dense, row-major 2D array
// holding the payload of a dtype-1 CRBS stream (or any native float32
// source) without widening. The float32 prediction pipeline consumes it
// directly at half the memory traffic of Buffer; Widen converts to a
// Buffer exactly when a float64 consumer is unavoidable.
type Buffer32 struct {
	Dataset string
	Field   string
	Step    int

	Rows, Cols int
	Data       []float32 // len == Rows*Cols, row-major
}

// NewBuffer32 allocates a zeroed rows×cols float32 buffer.
func NewBuffer32(rows, cols int) *Buffer32 {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("grid: invalid buffer shape %dx%d", rows, cols))
	}
	return &Buffer32{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromSlice32 wraps data (row-major, len rows*cols) in a Buffer32 without
// copying. The caller must not alias data afterwards.
func FromSlice32(rows, cols int, data []float32) (*Buffer32, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("grid: invalid shape %dx%d", rows, cols)
	}
	if len(data) != rows*cols {
		return nil, fmt.Errorf("grid: data length %d != %d*%d", len(data), rows, cols)
	}
	return &Buffer32{Rows: rows, Cols: cols, Data: data}, nil
}

// At returns the element at row r, column c.
func (b *Buffer32) At(r, c int) float32 { return b.Data[r*b.Cols+c] }

// Set assigns the element at row r, column c.
func (b *Buffer32) Set(r, c int, v float32) { b.Data[r*b.Cols+c] = v }

// Len returns the number of elements.
func (b *Buffer32) Len() int { return len(b.Data) }

// SizeBytes returns the uncompressed size in bytes (4 bytes per element).
func (b *Buffer32) SizeBytes() int { return 4 * len(b.Data) }

// Validate mirrors Buffer.Validate for float32 data: shape violations
// wrap crerr.ErrInvalidBuffer, non-finite data past the policy's bound
// wraps crerr.ErrNonFiniteData.
func (b *Buffer32) Validate(p ValidationPolicy) error {
	if b == nil {
		return fmt.Errorf("%w: nil buffer", crerr.ErrInvalidBuffer)
	}
	if b.Rows <= 0 || b.Cols <= 0 {
		return fmt.Errorf("%w: shape %dx%d", crerr.ErrInvalidBuffer, b.Rows, b.Cols)
	}
	if len(b.Data) != b.Rows*b.Cols {
		return fmt.Errorf("%w: data length %d != %d*%d", crerr.ErrInvalidBuffer, len(b.Data), b.Rows, b.Cols)
	}
	bad := 0
	for _, v := range b.Data {
		f := float64(v)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			bad++
		}
	}
	if bad > 0 {
		frac := float64(bad) / float64(len(b.Data))
		if frac > p.MaxNonFiniteFraction {
			return fmt.Errorf("%w: %d of %d values (%.3g%% > %.3g%% allowed)",
				crerr.ErrNonFiniteData, bad, len(b.Data), 100*frac, 100*p.MaxNonFiniteFraction)
		}
	}
	return nil
}

// Widen returns a float64 Buffer with every element converted exactly
// (float32 → float64 is lossless). Identity metadata is carried over.
func (b *Buffer32) Widen() *Buffer {
	out := &Buffer{
		Dataset: b.Dataset,
		Field:   b.Field,
		Step:    b.Step,
		Rows:    b.Rows,
		Cols:    b.Cols,
		Data:    make([]float64, len(b.Data)),
	}
	for i, v := range b.Data {
		out.Data[i] = float64(v)
	}
	return out
}
