package grid

import (
	"errors"
	"math"
	"testing"

	"github.com/crestlab/crest/internal/crerr"
)

func TestValidateShapeErrors(t *testing.T) {
	var nilBuf *Buffer
	cases := map[string]*Buffer{
		"nil":           nilBuf,
		"zero-rows":     {Rows: 0, Cols: 4, Data: nil},
		"negative-cols": {Rows: 4, Cols: -1, Data: nil},
		"short-data":    {Rows: 2, Cols: 2, Data: make([]float64, 3)},
		"long-data":     {Rows: 2, Cols: 2, Data: make([]float64, 5)},
	}
	for name, b := range cases {
		if err := b.Validate(DefaultValidation); !errors.Is(err, crerr.ErrInvalidBuffer) {
			t.Errorf("%s: err = %v, want ErrInvalidBuffer", name, err)
		}
	}
	if err := NewBuffer(4, 4).Validate(DefaultValidation); err != nil {
		t.Errorf("valid buffer rejected: %v", err)
	}
}

func TestValidateNonFinitePolicy(t *testing.T) {
	b := NewBuffer(10, 10)
	for i := range b.Data {
		b.Data[i] = float64(i)
	}
	b.Data[3] = math.NaN()
	b.Data[7] = math.Inf(-1)

	// Default policy: any non-finite value rejects.
	if err := b.Validate(DefaultValidation); !errors.Is(err, crerr.ErrNonFiniteData) {
		t.Errorf("default policy: err = %v, want ErrNonFiniteData", err)
	}
	// Shape errors are not data errors and vice versa.
	if err := b.Validate(DefaultValidation); errors.Is(err, crerr.ErrInvalidBuffer) {
		t.Error("data violation matched ErrInvalidBuffer")
	}
	// A tolerant policy admits 2% poisoned.
	if err := b.Validate(ValidationPolicy{MaxNonFiniteFraction: 0.05}); err != nil {
		t.Errorf("tolerant policy rejected 2%% NaN: %v", err)
	}
	// But not 2% against a 1% budget.
	if err := b.Validate(ValidationPolicy{MaxNonFiniteFraction: 0.01}); !errors.Is(err, crerr.ErrNonFiniteData) {
		t.Errorf("1%% policy: err = %v, want ErrNonFiniteData", err)
	}
}

func TestSanitized(t *testing.T) {
	clean := NewBuffer(4, 4)
	for i := range clean.Data {
		clean.Data[i] = 2
	}
	if got := clean.Sanitized(); got != clean {
		t.Error("clean buffer was copied")
	}

	b := clean.Clone()
	b.Data[0] = math.NaN()
	b.Data[5] = math.Inf(1)
	s := b.Sanitized()
	if s == b {
		t.Fatal("poisoned buffer not copied")
	}
	if math.IsNaN(b.Data[0]) == false {
		t.Error("original mutated")
	}
	// 14 finite values of 2 → fill is 2.
	if s.Data[0] != 2 || s.Data[5] != 2 {
		t.Errorf("fill values %g, %g, want 2", s.Data[0], s.Data[5])
	}
	if err := s.Validate(DefaultValidation); err != nil {
		t.Errorf("sanitized buffer still invalid: %v", err)
	}

	// All-non-finite buffer fills with zero.
	allBad := NewBuffer(2, 2)
	for i := range allBad.Data {
		allBad.Data[i] = math.NaN()
	}
	if s := allBad.Sanitized(); s.Data[0] != 0 {
		t.Errorf("all-NaN fill %g, want 0", s.Data[0])
	}
}

func TestVolumeValidate(t *testing.T) {
	var nilVol *Volume
	if err := nilVol.Validate(DefaultValidation); !errors.Is(err, crerr.ErrInvalidBuffer) {
		t.Errorf("nil volume: %v", err)
	}
	bad := &Volume{NZ: 2, NY: 2, NX: 2, Data: make([]float64, 7)}
	if err := bad.Validate(DefaultValidation); !errors.Is(err, crerr.ErrInvalidBuffer) {
		t.Errorf("short volume: %v", err)
	}
	v := NewVolume(2, 3, 4)
	if err := v.Validate(DefaultValidation); err != nil {
		t.Errorf("valid volume rejected: %v", err)
	}
	v.Data[5] = math.Inf(1)
	if err := v.Validate(DefaultValidation); !errors.Is(err, crerr.ErrNonFiniteData) {
		t.Errorf("poisoned volume: %v", err)
	}
}
