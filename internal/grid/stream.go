// stream.go implements the chunked block-stream format ("CRBS") that
// feeds the out-of-core estimation pipeline: a self-describing binary
// framing of one or more 2D slices — a 3D volume streamed slice by slice
// along its slowest dimension, or a time-evolving field streamed step by
// step — delivered in row chunks of arbitrary size so a reader never
// needs more than one row of buffered bytes.
//
// Layout (all integers little-endian):
//
//	magic   [4]byte  "CRBS"
//	version uint16   1
//	dtype   uint8    0 = float64, 1 = float32
//	_       uint8    reserved, must be zero
//	rows    uint32   rows per slice
//	cols    uint32   columns per row
//	slices  uint32   slice count; 0 = unknown, read until EOF
//
// followed by chunk frames until rows*cols*slices values have been
// delivered:
//
//	nrows   uint32   rows in this chunk (≥ 1)
//	payload nrows*cols values, dtype-sized, row-major
//
// Chunks may span slice boundaries; the chunking is a transport detail
// with no semantic weight, which is what makes the differential suite's
// bit-identity claim across chunk sizes meaningful. A stream with
// slices = 0 must end exactly on a slice boundary; a stream that ends
// mid-chunk or mid-slice fails with a typed crerr.ErrStreamCorrupt.
//
// float32 payloads are widened to float64 on read. The widening is exact
// (every float32 is representable as a float64), so downstream feature
// computation on a float32 stream is bit-identical to the in-memory path
// over the widened values; the only precision loss is the encoder's
// narrowing, bounded by ½ ULP of float32 (2⁻²⁴ relative).
package grid

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"github.com/crestlab/crest/internal/crerr"
)

// DType identifies the element encoding of a block stream.
type DType uint8

const (
	// DTypeF64 encodes values as IEEE-754 binary64, the lossless carrier.
	DTypeF64 DType = 0
	// DTypeF32 encodes values as IEEE-754 binary32 — half the bandwidth,
	// the native width of most sensor and simulation output.
	DTypeF32 DType = 1
)

// Size returns the encoded element width in bytes.
func (d DType) Size() int {
	if d == DTypeF32 {
		return 4
	}
	return 8
}

func (d DType) String() string {
	switch d {
	case DTypeF64:
		return "float64"
	case DTypeF32:
		return "float32"
	default:
		return fmt.Sprintf("dtype(%d)", uint8(d))
	}
}

var streamMagic = [4]byte{'C', 'R', 'B', 'S'}

// streamVersion is the only framing version this build speaks.
const streamVersion = 1

// headerSize is the fixed byte length of the stream header.
const headerSize = 4 + 2 + 1 + 1 + 4 + 4 + 4

// StreamHeader describes the shape of a block stream.
type StreamHeader struct {
	DType DType
	// Rows and Cols are the shape of each 2D slice.
	Rows, Cols int
	// Slices is the number of slices carried; 0 means "until EOF", for
	// long-lived temporal feeds whose length is unknown when the header
	// is written.
	Slices int
}

// StreamLimits bounds what a ChunkReader will accept before touching any
// payload bytes, so a hostile or corrupt header cannot provoke a huge
// allocation. The zero value of any field selects its default.
type StreamLimits struct {
	// MaxCols bounds columns per row (default 1<<22: a 32 MiB float64
	// row). The reader's working buffer is one row.
	MaxCols int
	// MaxRows bounds rows per slice (default 1<<22).
	MaxRows int
	// MaxSlices bounds the declared slice count (default 1<<20).
	MaxSlices int
	// MaxElements bounds rows*cols*slices overall (default 1<<40).
	MaxElements int64
}

// DefaultStreamLimits are the limits applied when none are given.
var DefaultStreamLimits = StreamLimits{
	MaxCols:     1 << 22,
	MaxRows:     1 << 22,
	MaxSlices:   1 << 20,
	MaxElements: 1 << 40,
}

func (l StreamLimits) withDefaults() StreamLimits {
	d := DefaultStreamLimits
	if l.MaxCols > 0 {
		d.MaxCols = l.MaxCols
	}
	if l.MaxRows > 0 {
		d.MaxRows = l.MaxRows
	}
	if l.MaxSlices > 0 {
		d.MaxSlices = l.MaxSlices
	}
	if l.MaxElements > 0 {
		d.MaxElements = l.MaxElements
	}
	return d
}

// streamErr builds a typed framing error: it matches
// crerr.ErrStreamCorrupt and, when cause is non-nil, the cause too.
func streamErr(cause error, format string, args ...any) error {
	msg := fmt.Sprintf(format, args...)
	if cause == nil {
		return fmt.Errorf("%w: %s", crerr.ErrStreamCorrupt, msg)
	}
	return fmt.Errorf("%w: %s: %w", crerr.ErrStreamCorrupt, msg, cause)
}

// ChunkReader decodes a block stream row by row with O(row) working
// memory: one row of encoded bytes is the only buffer it holds,
// regardless of chunk size, slice shape or stream length. It is the
// ingest seam of the out-of-core pipeline — files, network bodies and
// pipes all arrive through an io.Reader.
type ChunkReader struct {
	r   io.Reader
	hdr StreamHeader

	rowBuf    []byte // one encoded row
	chunkLeft int    // rows remaining in the current chunk frame
	rowsRead  int64  // total rows delivered
	totalRows int64  // rows promised by the header; -1 when Slices == 0
	done      bool
	err       error // sticky failure
}

// NewChunkReader parses the stream header and returns a reader positioned
// at the first row. The optional limits bound the accepted shape;
// DefaultStreamLimits apply when omitted.
func NewChunkReader(r io.Reader, limits ...StreamLimits) (*ChunkReader, error) {
	lim := DefaultStreamLimits
	if len(limits) > 0 {
		lim = limits[0].withDefaults()
	}
	var raw [headerSize]byte
	if _, err := io.ReadFull(r, raw[:]); err != nil {
		return nil, streamErr(err, "short header")
	}
	if [4]byte(raw[0:4]) != streamMagic {
		return nil, streamErr(nil, "bad magic %q", raw[0:4])
	}
	if v := binary.LittleEndian.Uint16(raw[4:6]); v != streamVersion {
		return nil, streamErr(nil, "unsupported version %d", v)
	}
	dt := DType(raw[6])
	if dt != DTypeF64 && dt != DTypeF32 {
		return nil, streamErr(nil, "unknown dtype %d", raw[6])
	}
	if raw[7] != 0 {
		return nil, streamErr(nil, "nonzero reserved byte %d", raw[7])
	}
	rows := int(binary.LittleEndian.Uint32(raw[8:12]))
	cols := int(binary.LittleEndian.Uint32(raw[12:16]))
	slices := int(binary.LittleEndian.Uint32(raw[16:20]))
	if rows <= 0 || cols <= 0 {
		return nil, streamErr(nil, "invalid slice shape %dx%d", rows, cols)
	}
	if cols > lim.MaxCols || rows > lim.MaxRows || slices > lim.MaxSlices {
		return nil, streamErr(nil, "shape %dx%dx%d exceeds ingest limits (max %dx%dx%d)",
			slices, rows, cols, lim.MaxSlices, lim.MaxRows, lim.MaxCols)
	}
	if slices > 0 {
		if n := int64(rows) * int64(cols) * int64(slices); n > lim.MaxElements {
			return nil, streamErr(nil, "%d elements exceed ingest limit %d", n, lim.MaxElements)
		}
	}
	cr := &ChunkReader{
		r:         r,
		hdr:       StreamHeader{DType: dt, Rows: rows, Cols: cols, Slices: slices},
		rowBuf:    make([]byte, cols*dt.Size()),
		totalRows: -1,
	}
	if slices > 0 {
		cr.totalRows = int64(rows) * int64(slices)
	}
	return cr, nil
}

// Header returns the decoded stream header.
func (cr *ChunkReader) Header() StreamHeader { return cr.hdr }

// RowsRead returns the number of rows delivered so far.
func (cr *ChunkReader) RowsRead() int64 { return cr.rowsRead }

// SlicesRead returns the number of complete slices delivered so far.
func (cr *ChunkReader) SlicesRead() int { return int(cr.rowsRead / int64(cr.hdr.Rows)) }

// ReadRow decodes the next row into dst, which must have length
// Header().Cols. float32 payloads are widened exactly. At the end of the
// stream it returns io.EOF: after the declared data for Slices > 0, or at
// a clean slice boundary for Slices == 0. Any framing violation — a
// truncated chunk, a zero-row frame, payload past the declared shape, an
// unexpected EOF mid-slice — and any underlying read failure return an
// error matching crerr.ErrStreamCorrupt (wrapping the cause, when there
// is one); the reader is then poisoned and every later call repeats the
// same error, so a partial stream can never be mistaken for a complete
// one.
func (cr *ChunkReader) ReadRow(dst []float64) error {
	if err := cr.fetchRow(len(dst)); err != nil {
		return err
	}
	cr.decodeRow(dst)
	return cr.advanceRow()
}

// ReadRow32 is ReadRow for float32 streams without the widening step:
// dtype-1 payload bits land in dst unchanged, which keeps the
// end-to-end float32 pipeline (featurizer, batch, server ingest) at
// half the memory traffic. It refuses float64 streams — narrowing is a
// lossy decision the caller must make explicitly.
func (cr *ChunkReader) ReadRow32(dst []float32) error {
	if cr.hdr.DType != DTypeF32 {
		return fmt.Errorf("%w: ReadRow32 on a %s stream", crerr.ErrInvalidBuffer, cr.hdr.DType)
	}
	if err := cr.fetchRow(len(dst)); err != nil {
		return err
	}
	for i := range dst {
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(cr.rowBuf[4*i:]))
	}
	return cr.advanceRow()
}

// fetchRow runs the shared pre-decode half of ReadRow/ReadRow32: sticky
// error and EOF state, destination-length validation, chunk-frame
// advance, and the raw payload read into rowBuf.
func (cr *ChunkReader) fetchRow(dstLen int) error {
	if cr.err != nil {
		return cr.err
	}
	if cr.done {
		return io.EOF
	}
	if dstLen != cr.hdr.Cols {
		return fmt.Errorf("%w: ReadRow dst length %d, want %d", crerr.ErrInvalidBuffer, dstLen, cr.hdr.Cols)
	}
	if cr.chunkLeft == 0 {
		if err := cr.nextChunk(); err != nil {
			if err == io.EOF {
				cr.done = true
				return io.EOF
			}
			cr.err = err
			return err
		}
	}
	if _, err := io.ReadFull(cr.r, cr.rowBuf); err != nil {
		cr.err = streamErr(err, "row %d truncated", cr.rowsRead)
		return cr.err
	}
	return nil
}

// advanceRow runs the shared post-decode half: row accounting and the
// declared-shape overrun check.
func (cr *ChunkReader) advanceRow() error {
	cr.chunkLeft--
	cr.rowsRead++
	if cr.totalRows >= 0 && cr.rowsRead == cr.totalRows {
		if cr.chunkLeft > 0 {
			cr.err = streamErr(nil, "chunk promises %d rows past the declared %d", cr.chunkLeft, cr.totalRows)
			return cr.err
		}
		cr.done = true
	}
	return nil
}

// nextChunk reads the next chunk frame header. io.EOF is returned only at
// a legal end of stream; every other condition is a typed framing error.
func (cr *ChunkReader) nextChunk() error {
	var raw [4]byte
	_, err := io.ReadFull(cr.r, raw[:])
	if err == io.EOF {
		// EOF between chunk frames: legal iff every promised row arrived
		// (known count), or we sit on a slice boundary (open-ended).
		if cr.totalRows >= 0 && cr.rowsRead < cr.totalRows {
			return streamErr(io.ErrUnexpectedEOF, "stream ends after %d of %d rows", cr.rowsRead, cr.totalRows)
		}
		if cr.totalRows < 0 && cr.rowsRead%int64(cr.hdr.Rows) != 0 {
			return streamErr(io.ErrUnexpectedEOF, "stream ends mid-slice at row %d of a %d-row slice",
				cr.rowsRead%int64(cr.hdr.Rows), cr.hdr.Rows)
		}
		return io.EOF
	}
	if err != nil {
		return streamErr(err, "chunk header at row %d", cr.rowsRead)
	}
	n := int(binary.LittleEndian.Uint32(raw[:]))
	if n == 0 {
		return streamErr(nil, "zero-row chunk at row %d", cr.rowsRead)
	}
	if cr.totalRows >= 0 && cr.rowsRead+int64(n) > cr.totalRows {
		return streamErr(nil, "chunk of %d rows overruns the declared %d at row %d", n, cr.totalRows, cr.rowsRead)
	}
	cr.chunkLeft = n
	return nil
}

func (cr *ChunkReader) decodeRow(dst []float64) {
	if cr.hdr.DType == DTypeF32 {
		for i := range dst {
			dst[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(cr.rowBuf[4*i:])))
		}
		return
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(cr.rowBuf[8*i:]))
	}
}

// ReadSlice reads the next full slice into a fresh buffer, or returns
// io.EOF when the stream is exhausted. It is the convenience path for
// callers that want whole slices; the out-of-core pipeline uses ReadRow.
func (cr *ChunkReader) ReadSlice() (*Buffer, error) {
	buf := NewBuffer(cr.hdr.Rows, cr.hdr.Cols)
	buf.Step = cr.SlicesRead()
	for r := 0; r < cr.hdr.Rows; r++ {
		err := cr.ReadRow(buf.Data[r*cr.hdr.Cols : (r+1)*cr.hdr.Cols])
		if err == io.EOF && r == 0 {
			return nil, io.EOF
		}
		if err != nil {
			if err == io.EOF {
				err = streamErr(io.ErrUnexpectedEOF, "slice %d truncated at row %d", buf.Step, r)
			}
			return nil, err
		}
	}
	return buf, nil
}

// ---------------------------------------------------------------------------
// Writer

// ChunkWriter encodes a block stream. Rows are buffered into chunk frames
// of ChunkRows rows; Close flushes the final partial chunk and verifies
// the declared shape was honored.
type ChunkWriter struct {
	w   io.Writer
	hdr StreamHeader

	chunkRows int
	buf       []byte // pending chunk payload
	bufRows   int
	rowsDone  int64
	scratch   [8]byte
	closed    bool
}

// NewChunkWriter writes the stream header and returns a writer. chunkRows
// is the number of rows per chunk frame (≤ 0 selects 32, the panel height
// of the streaming Gram pass).
func NewChunkWriter(w io.Writer, hdr StreamHeader, chunkRows int) (*ChunkWriter, error) {
	if hdr.Rows <= 0 || hdr.Cols <= 0 || hdr.Slices < 0 {
		return nil, fmt.Errorf("%w: stream shape %dx%dx%d", crerr.ErrInvalidBuffer, hdr.Slices, hdr.Rows, hdr.Cols)
	}
	if hdr.DType != DTypeF64 && hdr.DType != DTypeF32 {
		return nil, fmt.Errorf("%w: unknown dtype %d", crerr.ErrInvalidBuffer, hdr.DType)
	}
	if chunkRows <= 0 {
		chunkRows = 32
	}
	var raw [headerSize]byte
	copy(raw[0:4], streamMagic[:])
	binary.LittleEndian.PutUint16(raw[4:6], streamVersion)
	raw[6] = uint8(hdr.DType)
	binary.LittleEndian.PutUint32(raw[8:12], uint32(hdr.Rows))
	binary.LittleEndian.PutUint32(raw[12:16], uint32(hdr.Cols))
	binary.LittleEndian.PutUint32(raw[16:20], uint32(hdr.Slices))
	if _, err := w.Write(raw[:]); err != nil {
		return nil, fmt.Errorf("grid: write stream header: %w", err)
	}
	return &ChunkWriter{
		w:         w,
		hdr:       hdr,
		chunkRows: chunkRows,
		buf:       make([]byte, 0, chunkRows*hdr.Cols*hdr.DType.Size()),
	}, nil
}

// WriteRow appends one row (length Cols). float32 streams narrow each
// value with the usual round-to-nearest conversion; a finite value whose
// magnitude exceeds MaxFloat32 would silently round to ±Inf — and only
// fail much later, far from the source, when a reader validates the
// decoded buffer — so the writer rejects it up front with a typed error
// naming the offending coordinate. NaN and ±Inf inputs pass through
// unchanged (they are non-finite in either precision; readers apply
// their own ValidationPolicy).
func (cw *ChunkWriter) WriteRow(row []float64) error {
	if cw.closed {
		return errors.New("grid: write on closed ChunkWriter")
	}
	if len(row) != cw.hdr.Cols {
		return fmt.Errorf("%w: row length %d, want %d", crerr.ErrInvalidBuffer, len(row), cw.hdr.Cols)
	}
	if cw.hdr.Slices > 0 && cw.rowsDone >= int64(cw.hdr.Rows)*int64(cw.hdr.Slices) {
		return fmt.Errorf("%w: row past the declared %d slices", crerr.ErrInvalidBuffer, cw.hdr.Slices)
	}
	if cw.hdr.DType == DTypeF32 {
		// Validate the whole row before encoding any of it, so a
		// rejected row leaves the chunk buffer frame-aligned.
		for c, v := range row {
			if math.IsInf(float64(float32(v)), 0) && !math.IsInf(v, 0) {
				return fmt.Errorf("%w: float32 narrowing of %g overflows at slice %d row %d col %d",
					crerr.ErrNonFiniteData, v,
					cw.rowsDone/int64(cw.hdr.Rows), cw.rowsDone%int64(cw.hdr.Rows), c)
			}
		}
		for _, v := range row {
			binary.LittleEndian.PutUint32(cw.scratch[:4], math.Float32bits(float32(v)))
			cw.buf = append(cw.buf, cw.scratch[:4]...)
		}
	} else {
		for _, v := range row {
			binary.LittleEndian.PutUint64(cw.scratch[:8], math.Float64bits(v))
			cw.buf = append(cw.buf, cw.scratch[:8]...)
		}
	}
	cw.bufRows++
	cw.rowsDone++
	if cw.bufRows >= cw.chunkRows {
		return cw.flushChunk()
	}
	return nil
}

// WriteBuffer appends all rows of one slice, whose shape must match the
// header.
func (cw *ChunkWriter) WriteBuffer(buf *Buffer) error {
	if buf.Rows != cw.hdr.Rows || buf.Cols != cw.hdr.Cols {
		return fmt.Errorf("%w: slice shape %dx%d, stream wants %dx%d",
			crerr.ErrInvalidBuffer, buf.Rows, buf.Cols, cw.hdr.Rows, cw.hdr.Cols)
	}
	for r := 0; r < buf.Rows; r++ {
		if err := cw.WriteRow(buf.Data[r*buf.Cols : (r+1)*buf.Cols]); err != nil {
			return err
		}
	}
	return nil
}

func (cw *ChunkWriter) flushChunk() error {
	if cw.bufRows == 0 {
		return nil
	}
	binary.LittleEndian.PutUint32(cw.scratch[:4], uint32(cw.bufRows))
	if _, err := cw.w.Write(cw.scratch[:4]); err != nil {
		return fmt.Errorf("grid: write chunk header: %w", err)
	}
	if _, err := cw.w.Write(cw.buf); err != nil {
		return fmt.Errorf("grid: write chunk payload: %w", err)
	}
	cw.buf = cw.buf[:0]
	cw.bufRows = 0
	return nil
}

// Close flushes the final chunk and verifies the writer produced exactly
// the declared data (whole slices; all of them when Slices > 0). It does
// not close the underlying writer.
func (cw *ChunkWriter) Close() error {
	if cw.closed {
		return nil
	}
	if err := cw.flushChunk(); err != nil {
		return err
	}
	cw.closed = true
	if cw.rowsDone%int64(cw.hdr.Rows) != 0 {
		return fmt.Errorf("%w: stream closed mid-slice at row %d of %d",
			crerr.ErrInvalidBuffer, cw.rowsDone%int64(cw.hdr.Rows), cw.hdr.Rows)
	}
	if cw.hdr.Slices > 0 && cw.rowsDone != int64(cw.hdr.Rows)*int64(cw.hdr.Slices) {
		return fmt.Errorf("%w: stream closed after %d of %d declared slices",
			crerr.ErrInvalidBuffer, cw.rowsDone/int64(cw.hdr.Rows), cw.hdr.Slices)
	}
	return nil
}

// EncodeBuffer writes a single 2D buffer as a one-slice stream.
func EncodeBuffer(w io.Writer, buf *Buffer, dt DType, chunkRows int) error {
	cw, err := NewChunkWriter(w, StreamHeader{DType: dt, Rows: buf.Rows, Cols: buf.Cols, Slices: 1}, chunkRows)
	if err != nil {
		return err
	}
	if err := cw.WriteBuffer(buf); err != nil {
		return err
	}
	return cw.Close()
}

// EncodeVolume writes a 3D volume as an NZ-slice stream, sliced along the
// slowest dimension exactly as Volume.Slices.
func EncodeVolume(w io.Writer, vol *Volume, dt DType, chunkRows int) error {
	cw, err := NewChunkWriter(w, StreamHeader{DType: dt, Rows: vol.NY, Cols: vol.NX, Slices: vol.NZ}, chunkRows)
	if err != nil {
		return err
	}
	for z := 0; z < vol.NZ; z++ {
		if err := cw.WriteBuffer(vol.Slice(z)); err != nil {
			return err
		}
	}
	return cw.Close()
}

// EncodeBuffers writes a temporal sequence of same-shaped buffers (one
// slice per time step).
func EncodeBuffers(w io.Writer, bufs []*Buffer, dt DType, chunkRows int) error {
	if len(bufs) == 0 {
		return fmt.Errorf("%w: empty buffer sequence", crerr.ErrInvalidBuffer)
	}
	hdr := StreamHeader{DType: dt, Rows: bufs[0].Rows, Cols: bufs[0].Cols, Slices: len(bufs)}
	cw, err := NewChunkWriter(w, hdr, chunkRows)
	if err != nil {
		return err
	}
	for _, b := range bufs {
		if err := cw.WriteBuffer(b); err != nil {
			return err
		}
	}
	return cw.Close()
}
