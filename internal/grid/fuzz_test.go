package grid

import (
	"errors"
	"math"
	"testing"

	"github.com/crestlab/crest/internal/crerr"
)

// FuzzBufferValidate hardens the public-boundary validator: for arbitrary
// shapes, data lengths and bit patterns, Validate must never panic and
// must return either nil or an error classified under the taxonomy; a
// buffer that validates cleanly under the default policy must survive
// Sanitized unchanged and index safely.
func FuzzBufferValidate(f *testing.F) {
	f.Add(4, 4, 16, uint64(0), 0.0)
	f.Add(0, 4, 0, uint64(0), 0.0)
	f.Add(2, 3, 5, math.Float64bits(math.NaN()), 0.1)
	f.Add(-1, 8, 8, math.Float64bits(math.Inf(1)), 1.0)
	f.Add(1, 1, 1, math.Float64bits(1.5), 0.5)

	f.Fuzz(func(t *testing.T, rows, cols, n int, bits uint64, frac float64) {
		if n < 0 || n > 1<<16 {
			return
		}
		data := make([]float64, n)
		v := math.Float64frombits(bits)
		for i := range data {
			if i%3 == 0 {
				data[i] = v
			} else {
				data[i] = float64(i)
			}
		}
		b := &Buffer{Rows: rows, Cols: cols, Data: data}
		err := b.Validate(ValidationPolicy{MaxNonFiniteFraction: frac})
		if err != nil {
			if !errors.Is(err, crerr.ErrInvalidBuffer) && !errors.Is(err, crerr.ErrNonFiniteData) {
				t.Fatalf("error outside the taxonomy: %v", err)
			}
			return
		}
		// A buffer valid under the default policy has a sound shape: every
		// accessor must be panic-free and Sanitized a no-op when the data
		// is finite.
		if rows <= 0 || cols <= 0 || len(data) != rows*cols {
			t.Fatalf("invalid shape %dx%d len %d validated", rows, cols, len(data))
		}
		_ = b.At(rows-1, cols-1)
		s := b.Sanitized()
		if err := s.Validate(ValidationPolicy{}); err != nil && !errors.Is(err, crerr.ErrNonFiniteData) {
			t.Fatalf("sanitized buffer shape-invalid: %v", err)
		}
		if sErr := s.Validate(ValidationPolicy{}); sErr != nil {
			t.Fatalf("sanitized buffer still non-finite: %v", sErr)
		}
	})
}
