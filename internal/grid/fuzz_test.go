package grid

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"

	"github.com/crestlab/crest/internal/crerr"
)

// FuzzBufferValidate hardens the public-boundary validator: for arbitrary
// shapes, data lengths and bit patterns, Validate must never panic and
// must return either nil or an error classified under the taxonomy; a
// buffer that validates cleanly under the default policy must survive
// Sanitized unchanged and index safely.
func FuzzBufferValidate(f *testing.F) {
	f.Add(4, 4, 16, uint64(0), 0.0)
	f.Add(0, 4, 0, uint64(0), 0.0)
	f.Add(2, 3, 5, math.Float64bits(math.NaN()), 0.1)
	f.Add(-1, 8, 8, math.Float64bits(math.Inf(1)), 1.0)
	f.Add(1, 1, 1, math.Float64bits(1.5), 0.5)

	f.Fuzz(func(t *testing.T, rows, cols, n int, bits uint64, frac float64) {
		if n < 0 || n > 1<<16 {
			return
		}
		data := make([]float64, n)
		v := math.Float64frombits(bits)
		for i := range data {
			if i%3 == 0 {
				data[i] = v
			} else {
				data[i] = float64(i)
			}
		}
		b := &Buffer{Rows: rows, Cols: cols, Data: data}
		err := b.Validate(ValidationPolicy{MaxNonFiniteFraction: frac})
		if err != nil {
			if !errors.Is(err, crerr.ErrInvalidBuffer) && !errors.Is(err, crerr.ErrNonFiniteData) {
				t.Fatalf("error outside the taxonomy: %v", err)
			}
			return
		}
		// A buffer valid under the default policy has a sound shape: every
		// accessor must be panic-free and Sanitized a no-op when the data
		// is finite.
		if rows <= 0 || cols <= 0 || len(data) != rows*cols {
			t.Fatalf("invalid shape %dx%d len %d validated", rows, cols, len(data))
		}
		_ = b.At(rows-1, cols-1)
		s := b.Sanitized()
		if err := s.Validate(ValidationPolicy{}); err != nil && !errors.Is(err, crerr.ErrNonFiniteData) {
			t.Fatalf("sanitized buffer shape-invalid: %v", err)
		}
		if sErr := s.Validate(ValidationPolicy{}); sErr != nil {
			t.Fatalf("sanitized buffer still non-finite: %v", sErr)
		}
	})
}

// FuzzChunkDecode hardens the block-stream framing decoder against
// arbitrary bytes: NewChunkReader/ReadRow/ReadSlice must never panic,
// never allocate past the ingest limits, and fail only with errors
// classified under the taxonomy. Any byte stream that decodes completely
// must re-encode to a stream that decodes to the identical values.
func FuzzChunkDecode(f *testing.F) {
	// Seed with valid streams (both dtypes, multi-slice, odd chunking)
	// and a few corruptions of each.
	mk := func(rows, cols, slices, chunkRows int, dt DType) []byte {
		bufs := make([]*Buffer, slices)
		for s := range bufs {
			bufs[s] = NewBuffer(rows, cols)
			for i := range bufs[s].Data {
				bufs[s].Data[i] = float64(i%17) - float64(s)
			}
		}
		var b bytes.Buffer
		if err := EncodeBuffers(&b, bufs, dt, chunkRows); err != nil {
			f.Fatal(err)
		}
		return b.Bytes()
	}
	valid := mk(4, 6, 2, 3, DTypeF64)
	f.Add(valid)
	f.Add(mk(3, 3, 1, 1, DTypeF32))
	f.Add(valid[:len(valid)-5]) // truncated trailing chunk
	f.Add(valid[:headerSize+2]) // truncated first chunk header
	f.Add([]byte{0, 1, 2})      // garbage
	corrupt := append([]byte{}, valid...)
	corrupt[6] = 99 // unknown dtype
	f.Add(corrupt)

	lim := StreamLimits{MaxCols: 1 << 10, MaxRows: 1 << 10, MaxSlices: 64, MaxElements: 1 << 20}
	f.Fuzz(func(t *testing.T, raw []byte) {
		cr, err := NewChunkReader(bytes.NewReader(raw), lim)
		if err != nil {
			if !errors.Is(err, crerr.ErrStreamCorrupt) {
				t.Fatalf("header error outside the taxonomy: %v", err)
			}
			return
		}
		hdr := cr.Header()
		var slices []*Buffer
		for {
			buf, err := cr.ReadSlice()
			if err == io.EOF {
				break
			}
			if err != nil {
				if !errors.Is(err, crerr.ErrStreamCorrupt) && !errors.Is(err, crerr.ErrInvalidBuffer) {
					t.Fatalf("decode error outside the taxonomy: %v", err)
				}
				return
			}
			slices = append(slices, buf)
			if len(slices) > lim.MaxSlices+1 {
				t.Fatalf("decoded %d slices past the limit", len(slices))
			}
		}
		if hdr.Slices > 0 && len(slices) != hdr.Slices {
			t.Fatalf("clean EOF after %d of %d declared slices", len(slices), hdr.Slices)
		}
		if len(slices) == 0 {
			return
		}
		// Round-trip: re-encode and decode; values must match bitwise
		// (for float32 streams the decoded values are already widened, so
		// re-encoding narrows them back without loss).
		var rt bytes.Buffer
		if err := EncodeBuffers(&rt, slices, hdr.DType, 2); err != nil {
			t.Fatalf("re-encode of decoded stream failed: %v", err)
		}
		cr2, err := NewChunkReader(bytes.NewReader(rt.Bytes()), lim)
		if err != nil {
			t.Fatalf("re-decode header: %v", err)
		}
		for i := range slices {
			got, err := cr2.ReadSlice()
			if err != nil {
				t.Fatalf("re-decode slice %d: %v", i, err)
			}
			for j := range got.Data {
				if math.Float64bits(got.Data[j]) != math.Float64bits(slices[i].Data[j]) {
					t.Fatalf("round-trip slice %d element %d differs bitwise", i, j)
				}
			}
		}
	})
}
