package featcache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"github.com/crestlab/crest/internal/crerr"
	"github.com/crestlab/crest/internal/grid"
	"github.com/crestlab/crest/internal/predictors"
)

// flakyDataset fails (or panics) for the first failN calls per buffer,
// then succeeds, modelling a transient fault on the feature path.
type flakyDataset struct {
	mu    sync.Mutex
	calls map[*grid.Buffer]int
	failN int
	mode  string // "error" or "panic"
}

func (f *flakyDataset) compute(buf *grid.Buffer, cfg predictors.Config) (predictors.DatasetFeatures, error) {
	f.mu.Lock()
	if f.calls == nil {
		f.calls = make(map[*grid.Buffer]int)
	}
	f.calls[buf]++
	n := f.calls[buf]
	f.mu.Unlock()
	if n <= f.failN {
		if f.mode == "panic" {
			panic(fmt.Sprintf("flaky call %d", n))
		}
		return predictors.DatasetFeatures{}, fmt.Errorf("flaky call %d", n)
	}
	return predictors.ComputeDataset(buf, cfg)
}

// TestFailedComputationIsRetryable: the singleflight slot of a failing
// computation must not poison the key — the next caller misses again and
// can succeed once the fault clears. Regression test for the PR-1 design
// where errors were cached forever.
func TestFailedComputationIsRetryable(t *testing.T) {
	for _, mode := range []string{"error", "panic"} {
		t.Run(mode, func(t *testing.T) {
			f := &flakyDataset{failN: 2, mode: mode}
			c := NewWithCompute(serialCfg, f.compute, nil)
			buf := randomBuffer(t, 32, 32, 7)

			for i := 0; i < 2; i++ {
				if _, err := c.Features(buf, 1e-3); err == nil {
					t.Fatalf("call %d: expected injected failure", i)
				}
			}
			got, err := c.Features(buf, 1e-3)
			if err != nil {
				t.Fatalf("third call should succeed after fault cleared: %v", err)
			}
			want, err := predictors.Compute(buf, 1e-3, serialCfg)
			if err != nil {
				t.Fatal(err)
			}
			for i, v := range want.Vector() {
				if got[i] != v {
					t.Errorf("feature %d: %g != %g after recovery", i, got[i], v)
				}
			}
			st := c.Stats()
			if st.DatasetMisses != 3 || st.Failures != 2 {
				t.Errorf("misses=%d failures=%d, want 3 and 2", st.DatasetMisses, st.Failures)
			}
			if c.Pending() != 0 {
				t.Errorf("%d stuck in-flight entries", c.Pending())
			}
		})
	}
}

// TestPanicBecomesTypedError: a panicking computation surfaces as an error
// wrapping crerr.ErrInvalidBuffer carrying the panic value, for every
// concurrent waiter on the same in-flight slot.
func TestPanicBecomesTypedError(t *testing.T) {
	release := make(chan struct{})
	c := NewWithCompute(serialCfg,
		func(buf *grid.Buffer, cfg predictors.Config) (predictors.DatasetFeatures, error) {
			<-release
			panic("boom")
		}, nil)
	buf := randomBuffer(t, 16, 16, 3)

	const waiters = 8
	errs := make([]error, waiters)
	var wg sync.WaitGroup
	for g := 0; g < waiters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			_, errs[g] = c.Dataset(buf)
		}(g)
	}
	close(release)
	wg.Wait()
	for g, err := range errs {
		if !errors.Is(err, crerr.ErrInvalidBuffer) {
			t.Errorf("waiter %d: err = %v, want ErrInvalidBuffer", g, err)
		}
		if v, ok := crerr.PanicValue(err); !ok || v != "boom" {
			t.Errorf("waiter %d: panic value %v, %v", g, v, ok)
		}
	}
	if c.Len() != 0 || c.Pending() != 0 {
		t.Errorf("len=%d pending=%d after panic, want 0/0", c.Len(), c.Pending())
	}
	st := c.Stats()
	if st.DatasetHits+st.DatasetMisses != waiters {
		t.Errorf("hits %d + misses %d != %d requests", st.DatasetHits, st.DatasetMisses, waiters)
	}
}

// TestWarmContextCancel: cancelling mid-warm returns a typed cancellation
// error, leaves no stuck entries, and a later warm completes the fill.
func TestWarmContextCancel(t *testing.T) {
	c := New(serialCfg)
	var bufs []*grid.Buffer
	for s := int64(0); s < 16; s++ {
		bufs = append(bufs, randomBuffer(t, 24, 24, s))
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := c.WarmContext(ctx, bufs, []float64{1e-3}, 4)
	if !errors.Is(err, crerr.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrCanceled wrapping context.Canceled", err)
	}
	if c.Pending() != 0 {
		t.Errorf("%d stuck in-flight entries after cancel", c.Pending())
	}
	if err := c.Warm(bufs, []float64{1e-3}, 4); err != nil {
		t.Fatalf("warm after cancel: %v", err)
	}
	if got := c.Stats().DatasetMisses; got != uint64(len(bufs)) {
		t.Errorf("dataset misses %d, want %d", got, len(bufs))
	}
}

// TestWarmAggregatesFailures: Warm reports every failing buffer, not just
// the lowest index, and still leaves the good keys cached.
func TestWarmAggregatesFailures(t *testing.T) {
	c := New(serialCfg)
	bufs := []*grid.Buffer{
		randomBuffer(t, 24, 24, 1),
		grid.NewBuffer(4, 4), // untileable at K=8
		randomBuffer(t, 24, 24, 2),
		grid.NewBuffer(4, 4), // untileable at K=8
	}
	err := c.Warm(bufs, []float64{1e-3}, 2)
	var agg *crerr.AggregateError
	if !errors.As(err, &agg) {
		t.Fatalf("err = %T %v, want AggregateError", err, err)
	}
	if got := agg.Indices(); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("failing indices %v, want [1 3]", got)
	}
	if _, ferr := c.Features(bufs[0], 1e-3); ferr != nil {
		t.Errorf("good buffer not cached after partial warm: %v", ferr)
	}
}
