package featcache

import (
	"math"
	"testing"
)

// FuzzKeyDerivation hardens the cache-key derivation (buffer identity ×
// error bound): for arbitrary identity words and bounds the shard index
// must stay in range and be deterministic, and bound canonicalization must
// respect float equality (±0 fold, NaN collapse).
func FuzzKeyDerivation(f *testing.F) {
	f.Add(uint64(0), 0.0)
	f.Add(uint64(0xdeadbeef), 1e-3)
	f.Add(^uint64(0), math.Inf(1))
	f.Add(uint64(1)<<63, math.Copysign(0, -1))
	f.Add(uint64(42), math.NaN())
	f.Fuzz(func(t *testing.T, ptr uint64, eps float64) {
		bits := EBBits(eps)
		if bits != EBBits(eps) {
			t.Fatalf("EBBits(%g) not deterministic", eps)
		}
		if eps == 0 && bits != 0 {
			t.Fatalf("EBBits(%g) = %#x, want 0 for zero bound", eps, bits)
		}
		if math.IsNaN(eps) && bits != EBBits(math.NaN()) {
			t.Fatalf("NaN payload %#x not canonicalized", math.Float64bits(eps))
		}
		if !math.IsNaN(eps) && eps != 0 && bits != math.Float64bits(eps) {
			t.Fatalf("EBBits(%g) = %#x mangled a regular bound", eps, bits)
		}
		idx := ShardIndex(ptr, bits)
		if idx < 0 || idx >= NumShards {
			t.Fatalf("ShardIndex(%#x, %#x) = %d out of [0, %d)", ptr, bits, idx, NumShards)
		}
		if idx != ShardIndex(ptr, bits) {
			t.Fatalf("ShardIndex(%#x, %#x) not deterministic", ptr, bits)
		}
		if KeyHash(ptr, bits) != KeyHash(ptr, bits) {
			t.Fatalf("KeyHash(%#x, %#x) not deterministic", ptr, bits)
		}
	})
}
