package featcache

import (
	"errors"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"github.com/crestlab/crest/internal/crerr"
	"github.com/crestlab/crest/internal/grid"
	"github.com/crestlab/crest/internal/obs"
	"github.com/crestlab/crest/internal/predictors"
)

// serialCfg keeps the predictor passes single-threaded so feature values
// are bit-deterministic and exact equality checks are valid.
var serialCfg = predictors.Config{Workers: 1}

func randomBuffer(t *testing.T, rows, cols int, seed int64) *grid.Buffer {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := grid.NewBuffer(rows, cols)
	for i := range b.Data {
		// Smooth ramp plus noise: realistic enough for every predictor.
		b.Data[i] = math.Sin(float64(i)/17) + 0.1*rng.NormFloat64()
	}
	b.Dataset, b.Field, b.Step = "test", "f", int(seed)
	return b
}

// TestFeaturesMatchDirectCompute: a cache lookup must be bit-identical to
// the uncached predictor path.
func TestFeaturesMatchDirectCompute(t *testing.T) {
	c := New(serialCfg)
	buf := randomBuffer(t, 32, 32, 1)
	eps := 1e-3
	got, err := c.Features(buf, eps)
	if err != nil {
		t.Fatal(err)
	}
	f, err := predictors.Compute(buf, eps, serialCfg)
	if err != nil {
		t.Fatal(err)
	}
	want := f.Vector()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("feature %d: cache %g vs direct %g", i, got[i], want[i])
		}
	}
	// Second lookup must be a pure hit.
	before := c.Stats()
	if _, err := c.Features(buf, eps); err != nil {
		t.Fatal(err)
	}
	after := c.Stats()
	if after.Misses() != before.Misses() {
		t.Errorf("repeat lookup recomputed: misses %d -> %d", before.Misses(), after.Misses())
	}
	if after.Hits() != before.Hits()+2 {
		t.Errorf("repeat lookup hits %d -> %d, want +2 (dataset + distortion)", before.Hits(), after.Hits())
	}
}

// TestHammerSharedCache drives one shared cache from many goroutines —
// the regression test for the unsynchronized map the cache replaces. Run
// under -race it proves map safety; the counters prove singleflight: each
// distinct key is computed exactly once no matter how many goroutines
// race on its first request.
func TestHammerSharedCache(t *testing.T) {
	bufs := []*grid.Buffer{
		randomBuffer(t, 32, 32, 1),
		randomBuffer(t, 32, 32, 2),
		randomBuffer(t, 48, 32, 3),
		randomBuffer(t, 32, 48, 4),
	}
	epses := []float64{1e-2, 1e-3, 1e-4}

	// Reference values from a private serial cache.
	want := make(map[*grid.Buffer]map[float64][]float64)
	ref := New(serialCfg)
	for _, b := range bufs {
		want[b] = make(map[float64][]float64)
		for _, eps := range epses {
			v, err := ref.Features(b, eps)
			if err != nil {
				t.Fatal(err)
			}
			want[b][eps] = v
		}
	}

	c := New(serialCfg)
	const goroutines = 16
	const iters = 25
	errCh := make(chan error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for it := 0; it < iters; it++ {
				b := bufs[rng.Intn(len(bufs))]
				eps := epses[rng.Intn(len(epses))]
				v, err := c.Features(b, eps)
				if err != nil {
					errCh <- err
					return
				}
				w := want[b][eps]
				for i := range w {
					if v[i] != w[i] {
						t.Errorf("goroutine %d: feature %d of %v@%g: %g != %g", g, i, b.Step, eps, v[i], w[i])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	st := c.Stats()
	if st.DatasetMisses > uint64(len(bufs)) {
		t.Errorf("dataset features computed %d times for %d buffers: singleflight broken", st.DatasetMisses, len(bufs))
	}
	if st.EBMisses > uint64(len(bufs)*len(epses)) {
		t.Errorf("distortion computed %d times for %d keys: singleflight broken", st.EBMisses, len(bufs)*len(epses))
	}
	total := st.Hits() + st.Misses()
	if total < goroutines { // every goroutine issued at least one request
		t.Errorf("implausible counter total %d", total)
	}
}

// TestWarmFillsEveryKey: after Warm, every buffer × bound lookup is a hit.
func TestWarmFillsEveryKey(t *testing.T) {
	bufs := []*grid.Buffer{randomBuffer(t, 32, 32, 5), randomBuffer(t, 32, 32, 6)}
	epses := []float64{1e-3, 1e-4}
	c := New(serialCfg)
	if err := c.Warm(bufs, epses, 4); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.DatasetMisses != uint64(len(bufs)) || st.EBMisses != uint64(len(bufs)*len(epses)) {
		t.Fatalf("warm misses dset=%d eb=%d, want %d and %d", st.DatasetMisses, st.EBMisses, len(bufs), len(bufs)*len(epses))
	}
	for _, b := range bufs {
		for _, eps := range epses {
			if _, err := c.Features(b, eps); err != nil {
				t.Fatal(err)
			}
		}
	}
	if after := c.Stats(); after.Misses() != st.Misses() {
		t.Errorf("post-warm lookups recomputed: misses %d -> %d", st.Misses(), after.Misses())
	}
}

// TestErrorsAreNotRetained: a failing buffer reports a typed error on
// every lookup, but the failure never occupies a cache slot — each lookup
// is a fresh, retryable miss (see retry_test.go for the recovery paths).
func TestErrorsAreNotRetained(t *testing.T) {
	c := New(serialCfg) // default K=8 cannot tile a 4x4 buffer
	tiny := grid.NewBuffer(4, 4)
	if _, err := c.Features(tiny, 1e-3); !errors.Is(err, crerr.ErrInvalidBuffer) {
		t.Fatalf("4x4 buffer at K=8: err = %v, want ErrInvalidBuffer", err)
	}
	before := c.Stats()
	if _, err := c.Features(tiny, 1e-3); err == nil {
		t.Fatal("expected error on second lookup")
	}
	after := c.Stats()
	if after.DatasetMisses != before.DatasetMisses+1 {
		t.Errorf("failed key not retried: dataset misses %d -> %d", before.DatasetMisses, after.DatasetMisses)
	}
	if after.Failures != before.Failures+1 {
		t.Errorf("failures %d -> %d, want +1", before.Failures, after.Failures)
	}
	if c.Len() != 0 {
		t.Errorf("%d entries retained for a buffer that only ever fails", c.Len())
	}
	if c.Pending() != 0 {
		t.Errorf("%d stuck in-flight entries", c.Pending())
	}
}

// TestEBBitsCanonicalization: equal bounds share an entry even across
// distinct bit patterns (±0), and NaN collapses to one key.
// TestDedupWaitsAndRegistryMirror: a hit that lands on a still-in-flight
// computation counts as a singleflight dedup, and every cache counter is
// mirrored onto the observability registry.
func TestDedupWaitsAndRegistryMirror(t *testing.T) {
	reg := obs.NewRegistry()
	gate := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	c := NewWithCompute(serialCfg,
		func(buf *grid.Buffer, cfg predictors.Config) (predictors.DatasetFeatures, error) {
			once.Do(func() { close(started) })
			<-gate // hold the singleflight slot open
			return predictors.ComputeDataset(buf, cfg)
		}, nil)
	c.SetObs(reg)
	buf := randomBuffer(t, 16, 16, 7)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := c.Dataset(buf); err != nil {
			t.Error(err)
		}
	}()
	<-started // first requester is inside the compute, slot in flight

	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := c.Dataset(buf); err != nil { // must dedup-wait
			t.Error(err)
		}
	}()
	// Release the computation only after the second requester has
	// recorded its dedup wait (the counter increments just before it
	// blocks on the in-flight slot), so the dedup is guaranteed observed.
	for c.Stats().DedupWaits == 0 {
		runtime.Gosched()
	}
	close(gate)
	wg.Wait()

	st := c.Stats()
	if st.DatasetMisses != 1 || st.DatasetHits != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/1", st.DatasetHits, st.DatasetMisses)
	}
	if st.DedupWaits != 1 {
		t.Fatalf("DedupWaits = %d, want 1", st.DedupWaits)
	}
	snap := reg.Snapshot()
	if snap.Counters["featcache_dataset_hits_total"] != 1 ||
		snap.Counters["featcache_dataset_misses_total"] != 1 ||
		snap.Counters["featcache_dedup_waits_total"] != 1 {
		t.Fatalf("registry mirror out of sync: %+v", snap.Counters)
	}
	if hr := st.HitRate(); hr != 0.5 {
		t.Fatalf("HitRate = %g, want 0.5", hr)
	}
}

func TestEBBitsCanonicalization(t *testing.T) {
	if EBBits(0.0) != EBBits(math.Copysign(0, -1)) {
		t.Error("+0 and -0 derive different keys")
	}
	n1 := math.NaN()
	n2 := math.Float64frombits(math.Float64bits(math.NaN()) ^ 1) // distinct NaN payload
	if !math.IsNaN(n2) {
		t.Fatal("n2 not NaN")
	}
	if EBBits(n1) != EBBits(n2) {
		t.Error("distinct NaN payloads derive different keys")
	}
	if EBBits(1e-3) == EBBits(1e-4) {
		t.Error("distinct bounds collide")
	}
}
