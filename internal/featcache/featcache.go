// Package featcache is the shared, race-safe predictor-feature cache of
// the estimation pipeline. The five statistical predictors are
// compressor-independent (§IV-B), so every consumer that evaluates the
// same buffer — per-compressor proposed models in use case B, k-fold
// evaluation, the batch-estimation engine — should share one cache and pay
// for each buffer's features exactly once.
//
// The cache preserves the paper's §IV-C parallel substrate under
// concurrency with two mechanisms:
//
//   - Sharding: entries are spread over a fixed set of shards by a hash of
//     the buffer identity and error-bound bits, so concurrent lookups of
//     different buffers rarely contend on the same mutex.
//   - Singleflight admission: the first goroutine to request a missing
//     entry installs a placeholder under the shard lock and computes the
//     features outside it; later requesters (including concurrent first
//     requests for the same key) block on the placeholder instead of
//     recomputing. Each (buffer, bound) pair is therefore computed exactly
//     once no matter how many goroutines race on it.
//
// Dataset features (the four error-bound-agnostic predictors) and the
// error-bound-specific distortion are cached separately, mirroring the
// dset_predictors / eb_predictors split of Algorithm 2.
package featcache

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"unsafe"

	"github.com/crestlab/crest/internal/crerr"
	"github.com/crestlab/crest/internal/grid"
	"github.com/crestlab/crest/internal/obs"
	"github.com/crestlab/crest/internal/parallel"
	"github.com/crestlab/crest/internal/predictors"
)

// NumShards is the shard count; a power of two keeps the index a cheap
// mask. 32 shards keep contention negligible at typical worker counts.
const NumShards = 32

// DatasetFunc computes the error-bound-agnostic predictors of a buffer;
// the default is predictors.ComputeDataset. Replaceable for fault
// injection (internal/chaos) and testing.
type DatasetFunc func(*grid.Buffer, predictors.Config) (predictors.DatasetFeatures, error)

// EBFunc computes the error-bound-specific distortion; the default is
// predictors.ComputeEB.
type EBFunc func(*grid.Buffer, float64, predictors.Config) (float64, error)

// Dataset32Func and EB32Func are the native-float32 siblings; the
// defaults are predictors.ComputeDataset32 and predictors.ComputeEB32.
type Dataset32Func func(*grid.Buffer32, predictors.Config) (predictors.DatasetFeatures, error)

// EB32Func computes the float32 error-bound-specific distortion.
type EB32Func func(*grid.Buffer32, float64, predictors.Config) (float64, error)

// Cache is a sharded, mutex-protected, singleflight feature cache. The
// zero value is not usable; construct with New.
//
// Failure semantics: a computation that returns an error or panics does
// NOT leave a cached entry behind. Goroutines already waiting on that
// in-flight computation observe its error, but the key is removed before
// the waiters are released, so the next request for it is a fresh miss
// that retries the computation. Panics inside the compute functions are
// recovered and surfaced as errors wrapping crerr.ErrInvalidBuffer, so a
// malformed buffer can never wedge a singleflight slot or kill the
// process.
type Cache struct {
	cfg           predictors.Config
	computeDset   DatasetFunc
	computeEB     EBFunc
	computeDset32 Dataset32Func
	computeEB32   EB32Func
	shards        [NumShards]shard

	// Counters are updated with atomics so Stats never takes shard locks.
	dsetHits, dsetMisses uint64
	ebHits, ebMisses     uint64
	dedupWaits           uint64
	failures             uint64

	// Registry mirrors of the counters above, resolved once at
	// construction so the hot path never takes the registry mutex.
	reg obsCounters
}

// obsCounters are the cache's handles into the observability registry.
type obsCounters struct {
	dsetHits, dsetMisses *obs.Counter
	ebHits, ebMisses     *obs.Counter
	dedupWaits           *obs.Counter
	failures             *obs.Counter
}

func newObsCounters(r *obs.Registry) obsCounters {
	return obsCounters{
		dsetHits:   r.Counter("featcache_dataset_hits_total"),
		dsetMisses: r.Counter("featcache_dataset_misses_total"),
		ebHits:     r.Counter("featcache_eb_hits_total"),
		ebMisses:   r.Counter("featcache_eb_misses_total"),
		dedupWaits: r.Counter("featcache_dedup_waits_total"),
		failures:   r.Counter("featcache_failures_total"),
	}
}

type shard struct {
	mu     sync.Mutex
	dset   map[*grid.Buffer]*dsetEntry
	eb     map[ebKey]*ebEntry
	dset32 map[*grid.Buffer32]*dsetEntry
	eb32   map[eb32Key]*ebEntry
}

type ebKey struct {
	buf  *grid.Buffer
	bits uint64
}

type eb32Key struct {
	buf  *grid.Buffer32
	bits uint64
}

// dsetEntry is a singleflight slot: done closes once df/err are final.
type dsetEntry struct {
	done chan struct{}
	df   predictors.DatasetFeatures
	err  error
}

type ebEntry struct {
	done chan struct{}
	d    float64
	err  error
}

// New returns an empty cache computing features with cfg.
func New(cfg predictors.Config) *Cache {
	return NewWithCompute(cfg, nil, nil)
}

// NewWithCompute is New with replaceable compute functions (nil selects
// the predictors defaults). It exists for the fault-injection harness and
// for tests that need to provoke errors, panics or poisoned features on
// the feature path.
func NewWithCompute(cfg predictors.Config, dset DatasetFunc, eb EBFunc) *Cache {
	if dset == nil {
		dset = predictors.ComputeDataset
	}
	if eb == nil {
		eb = predictors.ComputeEB
	}
	c := &Cache{cfg: cfg, computeDset: dset, computeEB: eb,
		computeDset32: predictors.ComputeDataset32,
		computeEB32:   predictors.ComputeEB32,
		reg:           newObsCounters(obs.Default())}
	for i := range c.shards {
		c.shards[i].dset = make(map[*grid.Buffer]*dsetEntry)
		c.shards[i].eb = make(map[ebKey]*ebEntry)
		c.shards[i].dset32 = make(map[*grid.Buffer32]*dsetEntry)
		c.shards[i].eb32 = make(map[eb32Key]*ebEntry)
	}
	return c
}

// SetCompute32 replaces the float32 compute functions (nil keeps the
// predictors defaults). Like NewWithCompute it exists for fault
// injection and tests; call before the cache is shared.
func (c *Cache) SetCompute32(dset Dataset32Func, eb EB32Func) {
	if dset != nil {
		c.computeDset32 = dset
	}
	if eb != nil {
		c.computeEB32 = eb
	}
}

// SetObs re-points the cache's registry mirror at r (nil selects the
// process default). Call before the cache is shared across goroutines;
// the internal Stats counters are unaffected.
func (c *Cache) SetObs(r *obs.Registry) {
	if r == nil {
		r = obs.Default()
	}
	c.reg = newObsCounters(r)
}

// Config returns the predictor configuration the cache computes with.
func (c *Cache) Config() predictors.Config { return c.cfg }

// ---------------------------------------------------------------------------
// Key derivation

// KeyHash mixes a buffer-identity word and canonical error-bound bits into
// a shard hash (splitmix64 finalizer). Exported for the fuzz harness.
func KeyHash(ptr, epsBits uint64) uint64 {
	x := ptr ^ (epsBits * 0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// ShardIndex maps a (buffer identity, error bound) key to its shard.
func ShardIndex(ptr, epsBits uint64) int {
	return int(KeyHash(ptr, epsBits) % NumShards)
}

// EBBits canonicalizes an error bound for keying: ±0 fold together and
// every NaN collapses to a single bit pattern, so lookups that compare
// equal (or are equally meaningless) share one cache entry.
func EBBits(eps float64) uint64 {
	if eps == 0 { // true for both +0 and −0
		return 0
	}
	if math.IsNaN(eps) {
		return math.Float64bits(math.NaN())
	}
	return math.Float64bits(eps)
}

func bufBits(buf *grid.Buffer) uint64 {
	return uint64(uintptr(unsafe.Pointer(buf)))
}

func bufBits32(buf *grid.Buffer32) uint64 {
	return uint64(uintptr(unsafe.Pointer(buf)))
}

// ---------------------------------------------------------------------------
// Lookups

// Dataset returns the four error-bound-agnostic predictors of buf,
// computing them on first use. Concurrent first requests compute once.
// A failed or panicking computation is reported to its requesters but is
// not retained: the key misses again (and recomputes) on the next call.
func (c *Cache) Dataset(buf *grid.Buffer) (predictors.DatasetFeatures, error) {
	s := &c.shards[ShardIndex(bufBits(buf), 0)]
	s.mu.Lock()
	e, ok := s.dset[buf]
	if ok {
		s.mu.Unlock()
		atomic.AddUint64(&c.dsetHits, 1)
		c.reg.dsetHits.Inc()
		// A hit on a still-in-flight entry is a singleflight dedup: this
		// goroutine waits on another's computation instead of repeating it.
		select {
		case <-e.done:
		default:
			atomic.AddUint64(&c.dedupWaits, 1)
			c.reg.dedupWaits.Inc()
			<-e.done
		}
		return e.df, e.err
	}
	e = &dsetEntry{done: make(chan struct{})}
	s.dset[buf] = e
	s.mu.Unlock()
	atomic.AddUint64(&c.dsetMisses, 1)
	c.reg.dsetMisses.Inc()
	func() {
		defer func() {
			if v := recover(); v != nil {
				e.err = crerr.Recovered(v, crerr.ErrInvalidBuffer)
			}
		}()
		e.df, e.err = c.computeDset(buf, c.cfg)
	}()
	if e.err != nil {
		atomic.AddUint64(&c.failures, 1)
		c.reg.failures.Inc()
		// Remove the failed entry before releasing waiters so no later
		// caller can observe (and be poisoned by) a dead singleflight
		// slot: the failure is retryable.
		s.mu.Lock()
		if s.dset[buf] == e {
			delete(s.dset, buf)
		}
		s.mu.Unlock()
	}
	close(e.done)
	return e.df, e.err
}

// Distortion returns the error-bound-specific generic distortion of buf at
// eps, computing it on first use. Failure semantics match Dataset: errors
// and recovered panics are surfaced but never cached.
func (c *Cache) Distortion(buf *grid.Buffer, eps float64) (float64, error) {
	bits := EBBits(eps)
	k := ebKey{buf, bits}
	s := &c.shards[ShardIndex(bufBits(buf), bits)]
	s.mu.Lock()
	e, ok := s.eb[k]
	if ok {
		s.mu.Unlock()
		atomic.AddUint64(&c.ebHits, 1)
		c.reg.ebHits.Inc()
		select {
		case <-e.done:
		default:
			atomic.AddUint64(&c.dedupWaits, 1)
			c.reg.dedupWaits.Inc()
			<-e.done
		}
		return e.d, e.err
	}
	e = &ebEntry{done: make(chan struct{})}
	s.eb[k] = e
	s.mu.Unlock()
	atomic.AddUint64(&c.ebMisses, 1)
	c.reg.ebMisses.Inc()
	func() {
		defer func() {
			if v := recover(); v != nil {
				e.err = crerr.Recovered(v, crerr.ErrInvalidBuffer)
			}
		}()
		e.d, e.err = c.computeEB(buf, eps, c.cfg)
	}()
	if e.err != nil {
		atomic.AddUint64(&c.failures, 1)
		c.reg.failures.Inc()
		s.mu.Lock()
		if s.eb[k] == e {
			delete(s.eb, k)
		}
		s.mu.Unlock()
	}
	close(e.done)
	return e.d, e.err
}

// Features returns the full five-feature covariate vector of buf at eps,
// assembled from the two cached halves.
func (c *Cache) Features(buf *grid.Buffer, eps float64) ([]float64, error) {
	df, err := c.Dataset(buf)
	if err != nil {
		return nil, err
	}
	d, err := c.Distortion(buf, eps)
	if err != nil {
		return nil, err
	}
	return predictors.Combine(df, d).Vector(), nil
}

// FeaturesInto appends the five-feature vector of buf at eps to dst and
// returns the extended slice — the zero-allocation variant of Features
// for callers that recycle a per-worker buffer. On a warm cache the
// call performs no allocation at all, which is what keeps the saturated
// batch hot path at zero steady-state allocs/op.
func (c *Cache) FeaturesInto(dst []float64, buf *grid.Buffer, eps float64) ([]float64, error) {
	df, err := c.Dataset(buf)
	if err != nil {
		return dst, err
	}
	d, err := c.Distortion(buf, eps)
	if err != nil {
		return dst, err
	}
	return append(dst, df.SD, df.SC, df.CodingGain, df.CovSVDTrunc, d), nil
}

// Features32Into is FeaturesInto for a native float32 buffer.
func (c *Cache) Features32Into(dst []float64, buf *grid.Buffer32, eps float64) ([]float64, error) {
	df, err := c.Dataset32(buf)
	if err != nil {
		return dst, err
	}
	d, err := c.Distortion32(buf, eps)
	if err != nil {
		return dst, err
	}
	return append(dst, df.SD, df.SC, df.CodingGain, df.CovSVDTrunc, d), nil
}

// Dataset32 is Dataset for a native float32 buffer, with identical
// singleflight and failure semantics. float32 and float64 buffers are
// distinct key spaces — the same values held at different precisions
// legitimately yield (ULP-level) different features.
func (c *Cache) Dataset32(buf *grid.Buffer32) (predictors.DatasetFeatures, error) {
	s := &c.shards[ShardIndex(bufBits32(buf), 0)]
	s.mu.Lock()
	e, ok := s.dset32[buf]
	if ok {
		s.mu.Unlock()
		atomic.AddUint64(&c.dsetHits, 1)
		c.reg.dsetHits.Inc()
		select {
		case <-e.done:
		default:
			atomic.AddUint64(&c.dedupWaits, 1)
			c.reg.dedupWaits.Inc()
			<-e.done
		}
		return e.df, e.err
	}
	e = &dsetEntry{done: make(chan struct{})}
	s.dset32[buf] = e
	s.mu.Unlock()
	atomic.AddUint64(&c.dsetMisses, 1)
	c.reg.dsetMisses.Inc()
	func() {
		defer func() {
			if v := recover(); v != nil {
				e.err = crerr.Recovered(v, crerr.ErrInvalidBuffer)
			}
		}()
		e.df, e.err = c.computeDset32(buf, c.cfg)
	}()
	if e.err != nil {
		atomic.AddUint64(&c.failures, 1)
		c.reg.failures.Inc()
		s.mu.Lock()
		if s.dset32[buf] == e {
			delete(s.dset32, buf)
		}
		s.mu.Unlock()
	}
	close(e.done)
	return e.df, e.err
}

// Distortion32 is Distortion for a native float32 buffer.
func (c *Cache) Distortion32(buf *grid.Buffer32, eps float64) (float64, error) {
	bits := EBBits(eps)
	k := eb32Key{buf, bits}
	s := &c.shards[ShardIndex(bufBits32(buf), bits)]
	s.mu.Lock()
	e, ok := s.eb32[k]
	if ok {
		s.mu.Unlock()
		atomic.AddUint64(&c.ebHits, 1)
		c.reg.ebHits.Inc()
		select {
		case <-e.done:
		default:
			atomic.AddUint64(&c.dedupWaits, 1)
			c.reg.dedupWaits.Inc()
			<-e.done
		}
		return e.d, e.err
	}
	e = &ebEntry{done: make(chan struct{})}
	s.eb32[k] = e
	s.mu.Unlock()
	atomic.AddUint64(&c.ebMisses, 1)
	c.reg.ebMisses.Inc()
	func() {
		defer func() {
			if v := recover(); v != nil {
				e.err = crerr.Recovered(v, crerr.ErrInvalidBuffer)
			}
		}()
		e.d, e.err = c.computeEB32(buf, eps, c.cfg)
	}()
	if e.err != nil {
		atomic.AddUint64(&c.failures, 1)
		c.reg.failures.Inc()
		s.mu.Lock()
		if s.eb32[k] == e {
			delete(s.eb32, k)
		}
		s.mu.Unlock()
	}
	close(e.done)
	return e.d, e.err
}

// Features32 is Features for a native float32 buffer.
func (c *Cache) Features32(buf *grid.Buffer32, eps float64) ([]float64, error) {
	df, err := c.Dataset32(buf)
	if err != nil {
		return nil, err
	}
	d, err := c.Distortion32(buf, eps)
	if err != nil {
		return nil, err
	}
	return predictors.Combine(df, d).Vector(), nil
}

// Warm fills the cache for every buffer × bound pair across a bounded
// worker pool. It is the pre-pass that lets training-data collection and
// k-fold evaluation scale with cores instead of faulting features in one
// at a time. On failure every failing buffer index is reported (a
// crerr.AggregateError), not just the lowest.
func (c *Cache) Warm(bufs []*grid.Buffer, epses []float64, workers int) error {
	return c.WarmContext(context.Background(), bufs, epses, workers)
}

// WarmContext is Warm with cooperative cancellation: once ctx is done,
// workers finish their current buffer and stop; the returned error then
// matches both crerr.ErrCanceled and the context sentinel.
func (c *Cache) WarmContext(ctx context.Context, bufs []*grid.Buffer, epses []float64, workers int) error {
	if len(bufs) == 0 || len(epses) == 0 {
		return nil
	}
	errs := make([]error, len(bufs))
	cerr := parallel.ForEachDynamicCtx(ctx, len(bufs), workers, func(i int) {
		for _, eps := range epses {
			if _, err := c.Features(bufs[i], eps); err != nil {
				errs[i] = err
				return
			}
		}
	})
	if cerr != nil {
		return crerr.Canceled(cerr)
	}
	return crerr.Aggregate(errs)
}

// ---------------------------------------------------------------------------
// Observability

// Stats is a point-in-time snapshot of the cache counters. A hit counts
// any request served from an existing entry, including one whose
// computation is still in flight (the requester shares it rather than
// recomputing), so misses equal the number of distinct keys ever computed.
type Stats struct {
	DatasetHits, DatasetMisses uint64
	EBHits, EBMisses           uint64

	// DedupWaits counts the subset of hits that landed on a
	// still-in-flight computation and waited for it instead of
	// recomputing — the work the singleflight admission actually saved
	// under concurrency (a hit on a finished entry would have been a
	// plain map lookup in any design).
	DedupWaits uint64

	// Failures counts computations that ended in an error or recovered
	// panic. Failed keys are not retained, so over the cache's lifetime
	// resident entries == Misses − Failures (when no computation is in
	// flight).
	Failures uint64
}

// Hits is the total request count served without a fresh computation.
func (s Stats) Hits() uint64 { return s.DatasetHits + s.EBHits }

// Misses is the total number of feature computations performed.
func (s Stats) Misses() uint64 { return s.DatasetMisses + s.EBMisses }

// HitRate is hits / (hits + misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	total := s.Hits() + s.Misses()
	if total == 0 {
		return 0
	}
	return float64(s.Hits()) / float64(total)
}

// Stats returns a snapshot of the hit/miss counters.
func (c *Cache) Stats() Stats {
	return Stats{
		DatasetHits:   atomic.LoadUint64(&c.dsetHits),
		DatasetMisses: atomic.LoadUint64(&c.dsetMisses),
		EBHits:        atomic.LoadUint64(&c.ebHits),
		EBMisses:      atomic.LoadUint64(&c.ebMisses),
		DedupWaits:    atomic.LoadUint64(&c.dedupWaits),
		Failures:      atomic.LoadUint64(&c.failures),
	}
}

// Pending counts in-flight singleflight entries: resident entries whose
// computation has not yet published a result. Once every caller has
// returned, Pending must be zero — a nonzero steady-state value means a
// computation died without releasing its slot, the invariant the chaos
// tests assert after injected panics and cancellations.
func (c *Cache) Pending() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for _, e := range s.dset {
			select {
			case <-e.done:
			default:
				n++
			}
		}
		for _, e := range s.eb {
			select {
			case <-e.done:
			default:
				n++
			}
		}
		for _, e := range s.dset32 {
			select {
			case <-e.done:
			default:
				n++
			}
		}
		for _, e := range s.eb32 {
			select {
			case <-e.done:
			default:
				n++
			}
		}
		s.mu.Unlock()
	}
	return n
}

// Len returns the number of resident (successfully computed or in-flight)
// entries across both halves of the cache.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.dset) + len(s.eb) + len(s.dset32) + len(s.eb32)
		s.mu.Unlock()
	}
	return n
}
