package chaos

import (
	"fmt"
	"os"
	"sync/atomic"

	"github.com/crestlab/crest/internal/vfs"
)

// FSPlan configures the filesystem faults a FaultFS injects into the
// snapshot persistence path. Every EveryN field fires on operation
// sequence numbers n with n % EveryN == phase(seed), per operation kind;
// zero disables that fault.
type FSPlan struct {
	// Seed rotates which sequence numbers draw each fault kind.
	Seed int64

	// ShortWriteEvery makes every Nth File.Write persist only half the
	// bytes while REPORTING full success — the torn-write / crash-mid-
	// write failure mode. The atomic-write pipeline completes and leaves
	// a truncated file under the final name; only the snapshot digest
	// check can catch it.
	ShortWriteEvery int
	// WriteErrorEvery fails every Nth File.Write with an error (ENOSPC-
	// style: the writer is told).
	WriteErrorEvery int
	// SyncFailEvery fails every Nth Sync — file or directory — with an
	// error.
	SyncFailEvery int
	// RenameFailEvery fails every Nth Rename, leaving the target
	// untouched (the temp file never lands).
	RenameFailEvery int
	// ReadErrorEvery fails every Nth ReadFile with an error.
	ReadErrorEvery int
}

// FSCounts reports how many faults of each kind a FaultFS has injected.
type FSCounts struct {
	Writes, ShortWrites, WriteErrors uint64
	Syncs, SyncFails                 uint64
	Renames, RenameFails             uint64
	Reads, ReadErrors                uint64
}

// FaultFS wraps a vfs.FS with deterministic fault injection. It is safe
// for concurrent use; each operation kind has its own sequence counter so
// the fault pattern is independent of interleaving across kinds.
type FaultFS struct {
	inner vfs.FS
	plan  FSPlan

	writes, syncs, renames, reads                  atomic.Uint64
	shortWrites, writeErrs, syncFails, renameFails atomic.Uint64
	readErrs                                       atomic.Uint64
}

// WrapFS wraps fsys with the plan's faults.
func WrapFS(fsys vfs.FS, plan FSPlan) *FaultFS {
	return &FaultFS{inner: fsys, plan: plan}
}

// Counts returns a snapshot of the injected-fault counters.
func (f *FaultFS) Counts() FSCounts {
	return FSCounts{
		Writes:      f.writes.Load(),
		ShortWrites: f.shortWrites.Load(),
		WriteErrors: f.writeErrs.Load(),
		Syncs:       f.syncs.Load(),
		SyncFails:   f.syncFails.Load(),
		Renames:     f.renames.Load(),
		RenameFails: f.renameFails.Load(),
		Reads:       f.reads.Load(),
		ReadErrors:  f.readErrs.Load(),
	}
}

// hitsSeq reports whether sequence number n draws a fault with period
// every, phase-rotated by seed and a per-kind salt (shared with
// Injector.hits).
func hitsSeq(seed int64, n uint64, every int, salt uint64) bool {
	if every <= 0 {
		return false
	}
	phase := (uint64(seed) ^ salt) % uint64(every)
	return n%uint64(every) == phase
}

// CreateTemp implements vfs.FS, wrapping the produced file with write and
// sync faults.
func (f *FaultFS) CreateTemp(dir, pattern string) (vfs.File, error) {
	file, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{inner: file, fs: f}, nil
}

// Rename implements vfs.FS with injected rename failures.
func (f *FaultFS) Rename(oldpath, newpath string) error {
	n := f.renames.Add(1)
	if hitsSeq(f.plan.Seed, n, f.plan.RenameFailEvery, 0x7777) {
		f.renameFails.Add(1)
		return fmt.Errorf("%w: rename %s call %d", ErrInjected, newpath, n)
	}
	return f.inner.Rename(oldpath, newpath)
}

// Remove implements vfs.FS (passthrough — cleanup must stay reliable so
// the harness can assert no temp-file litter).
func (f *FaultFS) Remove(name string) error { return f.inner.Remove(name) }

// ReadFile implements vfs.FS with injected read errors.
func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	n := f.reads.Add(1)
	if hitsSeq(f.plan.Seed, n, f.plan.ReadErrorEvery, 0x8888) {
		f.readErrs.Add(1)
		return nil, fmt.Errorf("%w: read %s call %d", ErrInjected, name, n)
	}
	return f.inner.ReadFile(name)
}

// ReadDir implements vfs.FS (passthrough).
func (f *FaultFS) ReadDir(name string) ([]os.DirEntry, error) { return f.inner.ReadDir(name) }

// SyncDir implements vfs.FS, sharing the sync fault counter with file
// syncs.
func (f *FaultFS) SyncDir(name string) error {
	n := f.syncs.Add(1)
	if hitsSeq(f.plan.Seed, n, f.plan.SyncFailEvery, 0x9999) {
		f.syncFails.Add(1)
		return fmt.Errorf("%w: syncdir %s call %d", ErrInjected, name, n)
	}
	return f.inner.SyncDir(name)
}

// faultFile interposes write/sync faults on one temp file.
type faultFile struct {
	inner vfs.File
	fs    *FaultFS
}

// Write injects short writes (half the bytes persisted, full success
// reported — undetectable until a digest check) and write errors.
func (w *faultFile) Write(p []byte) (int, error) {
	n := w.fs.writes.Add(1)
	if hitsSeq(w.fs.plan.Seed, n, w.fs.plan.WriteErrorEvery, 0xaaaa) {
		w.fs.writeErrs.Add(1)
		return 0, fmt.Errorf("%w: write call %d", ErrInjected, n)
	}
	if hitsSeq(w.fs.plan.Seed, n, w.fs.plan.ShortWriteEvery, 0xbbbb) {
		w.fs.shortWrites.Add(1)
		if _, err := w.inner.Write(p[:len(p)/2]); err != nil {
			return 0, err
		}
		return len(p), nil // lie: report the full write as persisted
	}
	return w.inner.Write(p)
}

func (w *faultFile) Sync() error {
	n := w.fs.syncs.Add(1)
	if hitsSeq(w.fs.plan.Seed, n, w.fs.plan.SyncFailEvery, 0x9999) {
		w.fs.syncFails.Add(1)
		return fmt.Errorf("%w: sync %s call %d", ErrInjected, w.inner.Name(), n)
	}
	return w.inner.Sync()
}

func (w *faultFile) Close() error { return w.inner.Close() }
func (w *faultFile) Name() string { return w.inner.Name() }
