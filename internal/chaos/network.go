package chaos

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Network is the network-fault half of the harness: a dynamically
// togglable injector at the http.RoundTripper seam, keyed by directed
// (origin, target) host pairs so multi-node chaos suites can impose
// partial partitions — node A cannot reach node B while everyone else
// can. Unlike the seeded Injector (whose fault schedule is fixed up
// front), Network faults are flipped on and off mid-run: chaos tests
// blackhole a peer, watch breakers trip, heal the route, and watch
// recovery.
//
// Fault kinds per route: blackhole (the request hangs until its context
// is canceled — dropped packets, not a polite RST), added latency, and a
// 5xx storm (every request answered with a synthesized error status
// without touching the wire). Blackhole dominates latency and storms.
type Network struct {
	mu     sync.Mutex
	faults map[netRoute]*netFault

	requests   atomic.Uint64
	blackholed atomic.Uint64
	delayed    atomic.Uint64
	stormed    atomic.Uint64
}

// netRoute is a directed origin→target host pair; an empty side is a
// wildcard.
type netRoute struct{ from, to string }

// netFault is the fault set active on one route.
type netFault struct {
	blackhole bool
	latency   time.Duration
	storm     int // synthesized status; 0 = off
}

// NewNetwork returns an injector with no active faults.
func NewNetwork() *Network {
	return &Network{faults: make(map[netRoute]*netFault)}
}

// NetworkCounts reports how many requests each fault kind has touched.
type NetworkCounts struct {
	Requests, Blackholed, Delayed, Stormed uint64
}

// Counts returns a snapshot of the fault counters.
func (n *Network) Counts() NetworkCounts {
	return NetworkCounts{
		Requests:   n.requests.Load(),
		Blackholed: n.blackholed.Load(),
		Delayed:    n.delayed.Load(),
		Stormed:    n.stormed.Load(),
	}
}

// normalizeHost reduces a peer name or URL to a bare host[:port] so
// routes match however the caller spells the peer.
func normalizeHost(s string) string {
	s = strings.TrimPrefix(s, "http://")
	s = strings.TrimPrefix(s, "https://")
	return strings.TrimSuffix(s, "/")
}

func (n *Network) fault(from, to string) *netFault {
	f, ok := n.faults[netRoute{from, to}]
	if !ok {
		f = &netFault{}
		n.faults[netRoute{from, to}] = f
	}
	return f
}

// Partition blackholes the directed route from→to. Empty strings are
// wildcards: Partition("", target) drops everyone's traffic to target.
func (n *Network) Partition(from, to string) {
	n.mu.Lock()
	n.fault(normalizeHost(from), normalizeHost(to)).blackhole = true
	n.mu.Unlock()
}

// PartitionBoth blackholes both directions between two nodes.
func (n *Network) PartitionBoth(a, b string) {
	n.Partition(a, b)
	n.Partition(b, a)
}

// SetLatency adds a fixed delay on the directed route (zero removes it).
func (n *Network) SetLatency(from, to string, d time.Duration) {
	n.mu.Lock()
	n.fault(normalizeHost(from), normalizeHost(to)).latency = d
	n.mu.Unlock()
}

// Storm answers every request on the directed route with the given
// status (a 5xx, typically) without reaching the target; status 0 stops
// the storm.
func (n *Network) Storm(from, to string, status int) {
	n.mu.Lock()
	n.fault(normalizeHost(from), normalizeHost(to)).storm = status
	n.mu.Unlock()
}

// Heal clears every fault on the directed route.
func (n *Network) Heal(from, to string) {
	n.mu.Lock()
	delete(n.faults, netRoute{normalizeHost(from), normalizeHost(to)})
	n.mu.Unlock()
}

// HealAll clears every fault on every route.
func (n *Network) HealAll() {
	n.mu.Lock()
	n.faults = make(map[netRoute]*netFault)
	n.mu.Unlock()
}

// effective merges the active rules covering origin→target: the exact
// route plus the three wildcard grains. Any blackhole wins; latencies
// take the max; the most specific storm wins.
func (n *Network) effective(from, to string) netFault {
	n.mu.Lock()
	defer n.mu.Unlock()
	var out netFault
	for _, r := range [...]netRoute{{from, to}, {"", to}, {from, ""}, {"", ""}} {
		f, ok := n.faults[r]
		if !ok {
			continue
		}
		out.blackhole = out.blackhole || f.blackhole
		if f.latency > out.latency {
			out.latency = f.latency
		}
		if out.storm == 0 {
			out.storm = f.storm
		}
	}
	return out
}

// Transport wraps base with this injector's faults for requests
// originating at the named node. Each serving node in a chaos fleet gets
// its own wrapped transport, all sharing one Network, so directional
// faults compose naturally. A nil base uses http.DefaultTransport.
func (n *Network) Transport(origin string, base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &netTransport{net: n, origin: normalizeHost(origin), base: base}
}

// netTransport is one origin's fault-wrapped RoundTripper.
type netTransport struct {
	net    *Network
	origin string
	base   http.RoundTripper
}

// RoundTrip applies the effective faults of origin→target, then forwards
// to the base transport.
func (t *netTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.net.requests.Add(1)
	target := normalizeHost(req.URL.Host)
	f := t.net.effective(t.origin, target)
	if f.blackhole {
		t.net.blackholed.Add(1)
		// A blackholed packet gets no answer: park until the caller's
		// deadline or cancellation fires, mirroring a silent drop.
		<-req.Context().Done()
		return nil, fmt.Errorf("%w: blackholed %s->%s: %v",
			ErrInjected, t.origin, target, req.Context().Err())
	}
	if f.latency > 0 {
		t.net.delayed.Add(1)
		timer := time.NewTimer(f.latency)
		select {
		case <-req.Context().Done():
			timer.Stop()
			return nil, fmt.Errorf("%w: canceled during injected latency %s->%s: %v",
				ErrInjected, t.origin, target, req.Context().Err())
		case <-timer.C:
		}
	}
	if f.storm != 0 {
		t.net.stormed.Add(1)
		return &http.Response{
			StatusCode: f.storm,
			Status:     fmt.Sprintf("%d chaos storm", f.storm),
			Proto:      "HTTP/1.1",
			ProtoMajor: 1,
			ProtoMinor: 1,
			Header:     http.Header{"Content-Type": []string{"text/plain"}},
			Body:       io.NopCloser(strings.NewReader("chaos: injected storm\n")),
			Request:    req,
		}, nil
	}
	return t.base.RoundTrip(req)
}
