package chaos

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"github.com/crestlab/crest/internal/crerr"
	"github.com/crestlab/crest/internal/grid"
	"github.com/crestlab/crest/internal/predictors"
	"github.com/crestlab/crest/internal/vfs"
)

// streamFixture encodes a deterministic 2-slice stream and computes the
// in-memory reference features of each slice.
func streamFixture(t *testing.T) (raw []byte, bufs []*grid.Buffer) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	bufs = make([]*grid.Buffer, 2)
	for s := range bufs {
		bufs[s] = grid.NewBuffer(40, 48)
		for i := range bufs[s].Data {
			bufs[s].Data[i] = rng.NormFloat64() * float64(int(1)<<uint(rng.Intn(20)))
		}
	}
	var b bytes.Buffer
	if err := grid.EncodeBuffers(&b, bufs, grid.DTypeF64, 9); err != nil {
		t.Fatal(err)
	}
	return b.Bytes(), bufs
}

// TestFaultReaderShortReadsPreserveBitIdentity: a decoder fed 1-byte and
// jittered reads must still produce features bit-identical to the
// in-memory path — short reads are a transport artifact, not data.
func TestFaultReaderShortReadsPreserveBitIdentity(t *testing.T) {
	raw, bufs := streamFixture(t)
	cfg := predictors.Config{K: 8, Workers: 2}
	want := make([]predictors.DatasetFeatures, len(bufs))
	for i, buf := range bufs {
		w, err := predictors.ComputeDataset(buf, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = w
	}
	for _, plan := range []ReaderPlan{
		{MaxRead: 1},
		{MaxRead: 3},
		{MaxRead: 64, ShortReads: true, Seed: 1},
		{MaxRead: 1000, ShortReads: true, Seed: 7},
	} {
		fr := WrapReader(bytes.NewReader(raw), plan)
		cr, err := grid.NewChunkReader(fr)
		if err != nil {
			t.Fatalf("plan %+v: %v", plan, err)
		}
		got, err := predictors.ComputeStream(cr, []float64{1e-3}, cfg)
		if err != nil {
			t.Fatalf("plan %+v: %v", plan, err)
		}
		if len(got) != len(bufs) {
			t.Fatalf("plan %+v: %d slices", plan, len(got))
		}
		for i := range got {
			gv := predictors.Combine(got[i].Dataset, got[i].Distortions[0]).Vector()
			wd, err := predictors.ComputeEB(bufs[i], 1e-3, cfg)
			if err != nil {
				t.Fatal(err)
			}
			wv := predictors.Combine(want[i], wd).Vector()
			for j := range wv {
				if math.Float64bits(gv[j]) != math.Float64bits(wv[j]) {
					t.Fatalf("plan %+v slice %d feature %d differs bitwise", plan, i, j)
				}
			}
		}
	}
}

// TestFaultReaderMidStreamError: a transport failure after any byte count
// must yield a typed ErrStreamCorrupt carrying the injected cause, and no
// features.
func TestFaultReaderMidStreamError(t *testing.T) {
	raw, _ := streamFixture(t)
	cause := errors.New("link reset")
	for _, after := range []int64{int64(len(raw)) / 4, int64(len(raw)) / 2, int64(len(raw)) - 3} {
		fr := WrapReader(bytes.NewReader(raw), ReaderPlan{MaxRead: 17, FailAfter: after, Err: cause})
		cr, err := grid.NewChunkReader(fr)
		if err != nil {
			t.Fatalf("after=%d: header: %v", after, err)
		}
		out, err := predictors.ComputeStream(cr, []float64{1e-3}, predictors.Config{K: 8})
		if err == nil {
			t.Fatalf("after=%d: no error, %d slices", after, len(out))
		}
		if !errors.Is(err, crerr.ErrStreamCorrupt) {
			t.Errorf("after=%d: not typed ErrStreamCorrupt: %v", after, err)
		}
		if !errors.Is(err, cause) {
			t.Errorf("after=%d: cause lost: %v", after, err)
		}
		if out != nil {
			t.Errorf("after=%d: partial features returned", after)
		}
	}
}

// TestStreamFileThroughFaultFS drives the reader path through the
// filesystem chaos harness: a stream persisted through a FaultFS with
// short writes lands truncated on disk, and decoding it must fail with
// the typed stream error — never partial or NaN features.
func TestStreamFileThroughFaultFS(t *testing.T) {
	raw, bufs := streamFixture(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "field.crbs")

	// Healthy write first: the file decodes and matches in-memory.
	if err := vfs.WriteFileAtomic(vfs.OS, path, raw); err != nil {
		t.Fatal(err)
	}
	healthy, err := vfs.OS.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cr, err := grid.NewChunkReader(bytes.NewReader(healthy))
	if err != nil {
		t.Fatal(err)
	}
	out, err := predictors.ComputeStream(cr, nil, predictors.Config{K: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(bufs) {
		t.Fatalf("healthy file: %d slices", len(out))
	}

	// Torn write: every write is persisted half-length while reporting
	// success, so the file under the final name is truncated.
	torn := WrapFS(vfs.OS, FSPlan{ShortWriteEvery: 1})
	tornPath := filepath.Join(dir, "torn.crbs")
	if err := vfs.WriteFileAtomic(torn, tornPath, raw); err != nil {
		t.Fatal(err)
	}
	tornBytes, err := torn.ReadFile(tornPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(tornBytes) >= len(raw) {
		t.Fatalf("short-write fault did not truncate: %d of %d bytes", len(tornBytes), len(raw))
	}
	cr2, err := grid.NewChunkReader(bytes.NewReader(tornBytes))
	if err != nil {
		if !errors.Is(err, crerr.ErrStreamCorrupt) {
			t.Fatalf("torn header error not typed: %v", err)
		}
		return
	}
	out2, err := predictors.ComputeStream(cr2, nil, predictors.Config{K: 8})
	if err == nil {
		t.Fatalf("torn file decoded cleanly into %d slices", len(out2))
	}
	if !errors.Is(err, crerr.ErrStreamCorrupt) {
		t.Errorf("torn file error not typed ErrStreamCorrupt: %v", err)
	}
	if out2 != nil {
		t.Error("partial features from torn file")
	}

	// Read-side fault: ReadFile itself failing must surface the error.
	failing := WrapFS(vfs.OS, FSPlan{ReadErrorEvery: 1})
	if _, err := failing.ReadFile(path); err == nil {
		t.Fatal("injected read error did not surface")
	}
}
