package chaos

import (
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/crestlab/crest/internal/core"
	"github.com/crestlab/crest/internal/crerr"
	"github.com/crestlab/crest/internal/predictors"
	"github.com/crestlab/crest/internal/vfs"
	"github.com/crestlab/crest/snapshot"
)

// fsEstimator trains a small model for persistence chaos tests.
func fsEstimator(t testing.TB) *core.Estimator {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	samples := make([]core.Sample, 60)
	for i := range samples {
		f := make([]float64, 5)
		for j := range f {
			f[j] = rng.NormFloat64()
		}
		samples[i] = core.Sample{Features: f, CR: 1 + 6*math.Exp(0.5*f[1])}
	}
	est, err := core.Train(samples, core.Config{Predictors: predictors.Config{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	return est
}

// listSnapshots returns the *.crsnap and stray temp names in dir.
func listSnapshots(t testing.TB, dir string) (snaps, temps []string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		switch {
		case filepath.Ext(e.Name()) == snapshot.Ext:
			snaps = append(snaps, e.Name())
		case strings.Contains(e.Name(), ".tmp-"):
			temps = append(temps, e.Name())
		}
	}
	return snaps, temps
}

func TestChaosFSShortWriteIsCaughtByDigest(t *testing.T) {
	est := fsEstimator(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "model"+snapshot.Ext)
	fsys := WrapFS(vfs.OS, FSPlan{ShortWriteEvery: 1})

	// The torn write reports success: Save cannot see it.
	if err := snapshot.SaveFS(fsys, path, est); err != nil {
		t.Fatalf("short write was reported to the writer: %v", err)
	}
	if c := fsys.Counts(); c.ShortWrites == 0 {
		t.Fatal("no short write injected")
	}
	// But the digest catches the truncation at load time.
	if _, err := snapshot.Load(path); !errors.Is(err, crerr.ErrSnapshotCorrupt) {
		t.Fatalf("truncated snapshot loaded without ErrSnapshotCorrupt: %v", err)
	}
}

func TestChaosFSWriteErrorSurfaces(t *testing.T) {
	est := fsEstimator(t)
	dir := t.TempDir()
	fsys := WrapFS(vfs.OS, FSPlan{WriteErrorEvery: 1})
	err := snapshot.SaveFS(fsys, filepath.Join(dir, "model"+snapshot.Ext), est)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("write error not surfaced: %v", err)
	}
	snaps, temps := listSnapshots(t, dir)
	if len(snaps) != 0 || len(temps) != 0 {
		t.Fatalf("failed write left files behind: snaps=%v temps=%v", snaps, temps)
	}
}

func TestChaosFSSyncFailureSurfaces(t *testing.T) {
	est := fsEstimator(t)
	dir := t.TempDir()
	fsys := WrapFS(vfs.OS, FSPlan{SyncFailEvery: 1})
	err := snapshot.SaveFS(fsys, filepath.Join(dir, "model"+snapshot.Ext), est)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("sync failure not surfaced: %v", err)
	}
	if _, temps := listSnapshots(t, dir); len(temps) != 0 {
		t.Fatalf("failed sync left temp litter: %v", temps)
	}
}

func TestChaosFSRenameFailureLeavesNoPartialState(t *testing.T) {
	est := fsEstimator(t)
	dir := t.TempDir()
	fsys := WrapFS(vfs.OS, FSPlan{RenameFailEvery: 1})
	err := snapshot.SaveFS(fsys, filepath.Join(dir, "model"+snapshot.Ext), est)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("rename failure not surfaced: %v", err)
	}
	snaps, temps := listSnapshots(t, dir)
	if len(snaps) != 0 {
		t.Fatalf("target name exists after failed rename: %v", snaps)
	}
	if len(temps) != 0 {
		t.Fatalf("temp litter after failed rename: %v", temps)
	}
	if c := fsys.Counts(); c.RenameFails != 1 {
		t.Fatalf("counts %+v", c)
	}
}

func TestChaosFSReadErrorSurfaces(t *testing.T) {
	est := fsEstimator(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "model"+snapshot.Ext)
	if err := snapshot.Save(path, est); err != nil {
		t.Fatal(err)
	}
	fsys := WrapFS(vfs.OS, FSPlan{ReadErrorEvery: 1})
	if _, err := snapshot.LoadFS(fsys, path); !errors.Is(err, ErrInjected) {
		t.Fatalf("read error not surfaced: %v", err)
	}
}

// TestChaosLoadLatestFallsBackPastTornWrite is the durability acceptance
// scenario: the newest snapshot in the directory is truncated by a torn
// write that reported success, and LoadLatest must serve the previous
// valid snapshot — bit-identically.
func TestChaosLoadLatestFallsBackPastTornWrite(t *testing.T) {
	est := fsEstimator(t)
	dir := t.TempDir()

	goodPath, err := snapshot.WriteNew(dir, est)
	if err != nil {
		t.Fatal(err)
	}
	// A later training run crashes mid-write: every byte the kernel
	// claims to have written is only half there.
	torn := WrapFS(vfs.OS, FSPlan{ShortWriteEvery: 1})
	tornPath, err := snapshot.WriteNewFS(torn, dir, est)
	if err != nil {
		t.Fatalf("torn write was visible to the writer: %v", err)
	}
	if tornPath == goodPath {
		t.Fatalf("sequence did not advance: %s", tornPath)
	}

	loaded, path, err := snapshot.LoadLatest(dir)
	if err != nil {
		t.Fatalf("LoadLatest did not recover: %v", err)
	}
	if path != goodPath {
		t.Fatalf("loaded %s, want fallback to %s", path, goodPath)
	}
	// The recovered model must answer exactly as the original.
	rng := rand.New(rand.NewSource(29))
	for i := 0; i < 32; i++ {
		f := make([]float64, 5)
		for j := range f {
			f[j] = rng.NormFloat64()
		}
		want, err1 := est.Estimate(f)
		got, err2 := loaded.Estimate(f)
		if err1 != nil || err2 != nil {
			t.Fatalf("estimate errors: %v, %v", err1, err2)
		}
		if want != got {
			t.Fatalf("vector %d: recovered model diverged: %+v != %+v", i, got, want)
		}
	}
}

func TestChaosFSPeriodicFaultsAreDeterministic(t *testing.T) {
	est := fsEstimator(t)
	run := func() FSCounts {
		dir := t.TempDir()
		fsys := WrapFS(vfs.OS, FSPlan{Seed: 5, ShortWriteEvery: 3})
		for i := 0; i < 9; i++ {
			if _, err := snapshot.WriteNewFS(fsys, dir, est); err != nil {
				t.Fatal(err)
			}
		}
		return fsys.Counts()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same plan, different fault pattern: %+v != %+v", a, b)
	}
	if a.ShortWrites != 3 || a.Writes != 9 {
		t.Fatalf("want 3 short writes in 9, got %+v", a)
	}
}
