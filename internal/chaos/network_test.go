package chaos

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestNetworkPassthroughWhenHealthy(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer srv.Close()

	n := NewNetwork()
	client := &http.Client{Transport: n.Transport("http://node-a", nil)}
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || string(body) != "ok" {
		t.Fatalf("status %d body %q", resp.StatusCode, body)
	}
	if c := n.Counts(); c.Requests != 1 || c.Blackholed+c.Delayed+c.Stormed != 0 {
		t.Fatalf("counts = %+v", c)
	}
}

func TestNetworkDirectionalPartition(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer srv.Close()

	n := NewNetwork()
	n.Partition("node-a", srv.URL)

	// node-a -> target hangs until the context dies.
	clientA := &http.Client{Transport: n.Transport("node-a", nil)}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
	start := time.Now()
	_, err := clientA.Do(req)
	if err == nil {
		t.Fatal("blackholed request succeeded")
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected in chain", err)
	}
	if time.Since(start) < 40*time.Millisecond {
		t.Fatal("blackhole returned before the context deadline — not a silent drop")
	}

	// node-b -> target is unaffected: the partition is directional.
	clientB := &http.Client{Transport: n.Transport("node-b", nil)}
	resp, err := clientB.Get(srv.URL)
	if err != nil {
		t.Fatalf("healthy direction failed: %v", err)
	}
	resp.Body.Close()

	// Healing restores node-a.
	n.Heal("node-a", srv.URL)
	resp, err = clientA.Get(srv.URL)
	if err != nil {
		t.Fatalf("healed route still failing: %v", err)
	}
	resp.Body.Close()
	if c := n.Counts(); c.Blackholed != 1 {
		t.Fatalf("blackholed = %d, want 1", c.Blackholed)
	}
}

func TestNetworkLatencyInjection(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer srv.Close()

	n := NewNetwork()
	n.SetLatency("", srv.URL, 60*time.Millisecond)
	client := &http.Client{Transport: n.Transport("node-a", nil)}
	start := time.Now()
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Fatalf("request took %v, want >= injected 60ms", d)
	}
	if c := n.Counts(); c.Delayed != 1 {
		t.Fatalf("delayed = %d, want 1", c.Delayed)
	}
}

func TestNetworkStorm(t *testing.T) {
	var hits int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
	}))
	defer srv.Close()

	n := NewNetwork()
	n.Storm("node-a", srv.URL, http.StatusBadGateway)
	client := &http.Client{Transport: n.Transport("node-a", nil)}
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status = %d, want 502 storm", resp.StatusCode)
	}
	if hits != 0 {
		t.Fatal("storm request reached the real server")
	}
	n.Storm("node-a", srv.URL, 0)
	n.Heal("node-a", srv.URL)
	resp, err = client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || hits != 1 {
		t.Fatalf("after storm off: status %d hits %d", resp.StatusCode, hits)
	}
}

func TestNetworkWildcardAndHealAll(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer srv.Close()

	n := NewNetwork()
	n.Partition("", "") // drop the world
	client := &http.Client{Transport: n.Transport("node-a", nil)}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
	if _, err := client.Do(req); err == nil {
		t.Fatal("global partition let a request through")
	}
	n.HealAll()
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatalf("HealAll did not restore traffic: %v", err)
	}
	resp.Body.Close()
}
