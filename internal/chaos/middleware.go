package chaos

import (
	"net/http"
)

// Middleware wraps an HTTP handler with the injector's faults, the seam
// the serving layer exposes via server.Config.Middleware: a latency
// decision delays the handler, an error decision fails the request with a
// 500 before the handler runs, and a panic decision panics — which the
// server's recovery layer must convert to a typed 500 without killing the
// process. Fault decisions share the injector's global sequence, so an
// HTTP chaos run composes with feature-path injection on the same plan.
func (in *Injector) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		inject, panicv, _ := in.decision("http " + r.URL.Path)
		if panicv != nil {
			panic(panicv)
		}
		if inject != nil {
			http.Error(w, inject.Error(), http.StatusInternalServerError)
			return
		}
		next.ServeHTTP(w, r)
	})
}
