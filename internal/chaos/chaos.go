// Package chaos is the fault-injection harness of the resilience layer:
// it wraps compressors and the feature-computation path with deterministic,
// seeded fault injection — errors, panics, NaN payloads, artificial
// latency — so the race-enabled chaos tests can drive the estimation
// pipeline through every failure mode the taxonomy of internal/crerr
// classifies and assert the engine, caches and counters stay consistent.
//
// Determinism: every injection decision is a pure function of the
// injector's seed and the (atomically assigned) call sequence number, so a
// run injects exactly the same number of each fault kind regardless of
// scheduling. Which request draws which sequence number still depends on
// goroutine interleaving — that is the point: the fault pattern is fixed,
// the victim set varies, and the invariants must hold either way.
package chaos

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"github.com/crestlab/crest/internal/compressors"
	"github.com/crestlab/crest/internal/grid"
	"github.com/crestlab/crest/internal/predictors"
)

// ErrInjected marks every error manufactured by this package, so tests can
// distinguish injected faults from organic failures with errors.Is.
var ErrInjected = errors.New("chaos: injected fault")

// Plan configures which faults an Injector produces. Every EveryN field
// injects on call sequence numbers n with n % EveryN == offset(seed); zero
// disables that fault kind.
type Plan struct {
	// Seed rotates which sequence numbers draw each fault kind.
	Seed int64

	// ErrorEvery injects a plain error on every Nth call.
	ErrorEvery int
	// PanicEvery injects a panic on every Nth call.
	PanicEvery int
	// NaNEvery poisons the produced payload (decompressed buffer or
	// computed feature) with NaN on every Nth call.
	NaNEvery int
	// LatencyEvery sleeps Latency on every Nth call.
	LatencyEvery int
	// Latency is the injected sleep (default 1ms when LatencyEvery > 0).
	Latency time.Duration
}

// Counts reports how many faults of each kind an injector has produced.
type Counts struct {
	Calls, Errors, Panics, NaNs, Delays uint64
}

// Injector makes deterministic per-call fault decisions for one Plan. It
// is safe for concurrent use.
type Injector struct {
	plan  Plan
	calls atomic.Uint64

	errs, panics, nans, delays atomic.Uint64
}

// NewInjector returns an injector for the plan.
func NewInjector(plan Plan) *Injector {
	if plan.LatencyEvery > 0 && plan.Latency <= 0 {
		plan.Latency = time.Millisecond
	}
	return &Injector{plan: plan}
}

// Counts returns a snapshot of the injected-fault counters.
func (in *Injector) Counts() Counts {
	return Counts{
		Calls:  in.calls.Load(),
		Errors: in.errs.Load(),
		Panics: in.panics.Load(),
		NaNs:   in.nans.Load(),
		Delays: in.delays.Load(),
	}
}

// hits reports whether call sequence number n draws a fault with period
// every, rotating the phase by the seed and a per-kind salt so different
// fault kinds fire on different calls of the same plan.
func (in *Injector) hits(n uint64, every int, salt uint64) bool {
	return hitsSeq(in.plan.Seed, n, every, salt)
}

// decision evaluates all fault kinds for the next call. Latency is applied
// immediately; error/panic/NaN are returned for the caller to act on at
// the right point in its pipeline.
func (in *Injector) decision(site string) (inject error, panicv any, poison bool) {
	n := in.calls.Add(1)
	if in.hits(n, in.plan.LatencyEvery, 0x5a5a) {
		in.delays.Add(1)
		time.Sleep(in.plan.Latency)
	}
	if in.hits(n, in.plan.PanicEvery, 0x1111) {
		in.panics.Add(1)
		return nil, fmt.Sprintf("chaos: injected panic at %s call %d", site, n), false
	}
	if in.hits(n, in.plan.ErrorEvery, 0x2222) {
		in.errs.Add(1)
		return fmt.Errorf("%w: %s call %d", ErrInjected, site, n), nil, false
	}
	if in.hits(n, in.plan.NaNEvery, 0x3333) {
		in.nans.Add(1)
		return nil, nil, true
	}
	return nil, nil, false
}

// ---------------------------------------------------------------------------
// Compressor wrapper

// Compressor wraps an error-bounded compressor with fault injection on
// both Compress and Decompress.
type Compressor struct {
	inner compressors.Compressor
	in    *Injector
}

// WrapCompressor wraps comp with the injector's faults.
func WrapCompressor(comp compressors.Compressor, in *Injector) *Compressor {
	return &Compressor{inner: comp, in: in}
}

// Name implements compressors.Compressor.
func (c *Compressor) Name() string { return "chaos(" + c.inner.Name() + ")" }

// Compress implements compressors.Compressor with injected faults. A NaN
// decision truncates the stream (a corrupt payload a decoder must reject).
func (c *Compressor) Compress(buf *grid.Buffer, eps float64) ([]byte, error) {
	inject, panicv, poison := c.in.decision("compress")
	if panicv != nil {
		panic(panicv)
	}
	if inject != nil {
		return nil, inject
	}
	blob, err := c.inner.Compress(buf, eps)
	if err != nil {
		return nil, err
	}
	if poison && len(blob) > 0 {
		return blob[:len(blob)/2], nil
	}
	return blob, nil
}

// Decompress implements compressors.Compressor with injected faults. A NaN
// decision poisons the first element of the reconstruction.
func (c *Compressor) Decompress(data []byte) (*grid.Buffer, error) {
	inject, panicv, poison := c.in.decision("decompress")
	if panicv != nil {
		panic(panicv)
	}
	if inject != nil {
		return nil, inject
	}
	buf, err := c.inner.Decompress(data)
	if err != nil {
		return nil, err
	}
	if poison && len(buf.Data) > 0 {
		buf.Data[0] = math.NaN()
	}
	return buf, nil
}

// ---------------------------------------------------------------------------
// Feature-path wrappers

// DatasetFunc is the signature of the dataset-feature computation hook of
// featcache (predictors.ComputeDataset compatible). It is an alias of the
// bare function type so wrapped hooks assign directly to
// featcache.DatasetFunc.
type DatasetFunc = func(*grid.Buffer, predictors.Config) (predictors.DatasetFeatures, error)

// EBFunc is the signature of the distortion computation hook of featcache
// (predictors.ComputeEB compatible).
type EBFunc = func(*grid.Buffer, float64, predictors.Config) (float64, error)

// Dataset wraps a dataset-feature computation with the injector's faults;
// a NaN decision poisons the SD feature.
func (in *Injector) Dataset(base DatasetFunc) DatasetFunc {
	return func(buf *grid.Buffer, cfg predictors.Config) (predictors.DatasetFeatures, error) {
		inject, panicv, poison := in.decision("dataset-features")
		if panicv != nil {
			panic(panicv)
		}
		if inject != nil {
			return predictors.DatasetFeatures{}, inject
		}
		df, err := base(buf, cfg)
		if err == nil && poison {
			df.SD = math.NaN()
		}
		return df, err
	}
}

// EB wraps a distortion computation with the injector's faults; a NaN
// decision poisons the returned distortion.
func (in *Injector) EB(base EBFunc) EBFunc {
	return func(buf *grid.Buffer, eps float64, cfg predictors.Config) (float64, error) {
		inject, panicv, poison := in.decision("eb-distortion")
		if panicv != nil {
			panic(panicv)
		}
		if inject != nil {
			return 0, inject
		}
		d, err := base(buf, eps, cfg)
		if err == nil && poison {
			d = math.NaN()
		}
		return d, err
	}
}
