package chaos

import (
	"io"
)

// ReaderPlan configures the byte-level faults a FaultReader injects into
// an io.Reader — the transport-side companion of FSPlan, aimed at the
// chunked block-stream ingest path (grid.ChunkReader): a streaming
// decoder must survive arbitrarily short reads without misframing, and
// must surface a mid-stream transport error as a typed failure, never as
// partial output.
type ReaderPlan struct {
	// Seed drives the deterministic short-read length pattern.
	Seed int64
	// MaxRead caps each Read to at most this many bytes (0 disables).
	// Combined with the rotation below, it exercises every misalignment
	// between transport reads and frame boundaries.
	MaxRead int
	// ShortReads, when true, varies each read length in [1, MaxRead]
	// deterministically from Seed instead of always delivering MaxRead.
	ShortReads bool
	// FailAfter injects Err once this many bytes have been delivered
	// (0 disables). The read that crosses the boundary delivers the
	// remaining bytes first; the NEXT read fails — the way a socket or
	// disk actually dies.
	FailAfter int64
	// Err is the injected failure (default io.ErrUnexpectedEOF).
	Err error
}

// FaultReader wraps an io.Reader with the plan's faults. Not safe for
// concurrent use, matching the io.Reader contract.
type FaultReader struct {
	inner     io.Reader
	plan      ReaderPlan
	delivered int64
	state     uint64 // short-read length PRNG state
	failed    bool
}

// WrapReader wraps r with the plan's faults.
func WrapReader(r io.Reader, plan ReaderPlan) *FaultReader {
	if plan.Err == nil {
		plan.Err = io.ErrUnexpectedEOF
	}
	return &FaultReader{inner: r, plan: plan, state: uint64(plan.Seed)*2862933555777941757 + 3037000493}
}

// Delivered returns the number of bytes passed through so far.
func (r *FaultReader) Delivered() int64 { return r.delivered }

// next steps the xorshift state for the short-read pattern.
func (r *FaultReader) next() uint64 {
	r.state ^= r.state << 13
	r.state ^= r.state >> 7
	r.state ^= r.state << 17
	return r.state
}

func (r *FaultReader) Read(p []byte) (int, error) {
	if r.failed {
		return 0, r.plan.Err
	}
	if r.plan.FailAfter > 0 && r.delivered >= r.plan.FailAfter {
		r.failed = true
		return 0, r.plan.Err
	}
	n := len(p)
	if r.plan.MaxRead > 0 && n > r.plan.MaxRead {
		n = r.plan.MaxRead
	}
	if r.plan.ShortReads && n > 1 {
		n = 1 + int(r.next()%uint64(n))
	}
	if r.plan.FailAfter > 0 {
		if left := r.plan.FailAfter - r.delivered; int64(n) > left {
			n = int(left)
		}
	}
	m, err := r.inner.Read(p[:n])
	r.delivered += int64(m)
	return m, err
}
