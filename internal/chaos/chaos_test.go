package chaos

import (
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"github.com/crestlab/crest/internal/compressors"
	"github.com/crestlab/crest/internal/grid"
	"github.com/crestlab/crest/internal/predictors"
)

func sineBuffer(rows, cols int) *grid.Buffer {
	b := grid.NewBuffer(rows, cols)
	for i := range b.Data {
		b.Data[i] = math.Sin(float64(i) / 7)
	}
	return b
}

// TestDeterministicCounts: fault counts are a pure function of the plan
// and the number of calls — identical across runs and across goroutine
// interleavings.
func TestDeterministicCounts(t *testing.T) {
	plan := Plan{Seed: 42, ErrorEvery: 5, PanicEvery: 7, NaNEvery: 3}
	const calls = 210 // lcm(5,7,3) * 2: whole number of every period

	run := func(workers int) Counts {
		in := NewInjector(plan)
		var wg sync.WaitGroup
		per := calls / workers
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < per; i++ {
					func() {
						defer func() { recover() }()
						in.decision("test")
					}()
				}
			}()
		}
		wg.Wait()
		return in.Counts()
	}

	serial := run(1)
	concurrent := run(6)
	if serial != concurrent {
		t.Errorf("counts differ by scheduling: serial %+v, concurrent %+v", serial, concurrent)
	}
	// Panic wins over error wins over NaN on a shared call number, but the
	// per-kind salts put the phases on different residues here, so each
	// kind fires calls/period times minus collisions with a stronger kind.
	if serial.Calls != calls {
		t.Errorf("calls = %d, want %d", serial.Calls, calls)
	}
	if serial.Panics != calls/7 {
		t.Errorf("panics = %d, want %d", serial.Panics, calls/7)
	}
	if serial.Errors == 0 || serial.NaNs == 0 {
		t.Errorf("errors = %d, NaNs = %d, want both > 0", serial.Errors, serial.NaNs)
	}
}

// TestSeedRotatesPhase: different seeds shift which calls draw faults.
func TestSeedRotatesPhase(t *testing.T) {
	victims := func(seed int64) []int {
		in := NewInjector(Plan{Seed: seed, ErrorEvery: 4})
		var hit []int
		for i := 0; i < 16; i++ {
			if err, _, _ := in.decision("t"); err != nil {
				hit = append(hit, i)
			}
		}
		return hit
	}
	a, b := victims(1), victims(2)
	if len(a) != 4 || len(b) != 4 {
		t.Fatalf("hit counts %d, %d, want 4 each", len(a), len(b))
	}
	if a[0] == b[0] {
		t.Errorf("seeds 1 and 2 share phase %d", a[0])
	}
}

func TestWrapCompressorFaults(t *testing.T) {
	inner := compressors.NewZFPLike()
	buf := sineBuffer(16, 16)

	t.Run("error", func(t *testing.T) {
		c := WrapCompressor(inner, NewInjector(Plan{ErrorEvery: 1}))
		if _, err := c.Compress(buf, 1e-3); !errors.Is(err, ErrInjected) {
			t.Errorf("err = %v, want ErrInjected", err)
		}
	})
	t.Run("panic", func(t *testing.T) {
		c := WrapCompressor(inner, NewInjector(Plan{PanicEvery: 1}))
		defer func() {
			if recover() == nil {
				t.Error("no panic injected")
			}
		}()
		c.Compress(buf, 1e-3)
	})
	t.Run("truncation", func(t *testing.T) {
		in := NewInjector(Plan{NaNEvery: 1})
		c := WrapCompressor(inner, in)
		blob, err := c.Compress(buf, 1e-3)
		if err != nil {
			t.Fatal(err)
		}
		whole, err := inner.Compress(buf, 1e-3)
		if err != nil {
			t.Fatal(err)
		}
		if len(blob) >= len(whole) {
			t.Errorf("poisoned blob %d bytes, want < %d", len(blob), len(whole))
		}
		// The corrupt stream must surface as an error, not a crash.
		if _, err := inner.Decompress(blob); err == nil {
			t.Error("truncated stream accepted by decoder")
		}
	})
	t.Run("nan-reconstruction", func(t *testing.T) {
		// Panic phase salt differs from NaN's; use a clean pass-through
		// Compress then a poisoned Decompress.
		in := NewInjector(Plan{NaNEvery: 2, Seed: 1}) // fires on odd or even calls
		c := WrapCompressor(inner, in)
		var poisoned bool
		for i := 0; i < 2 && !poisoned; i++ {
			blob, err := inner.Compress(buf, 1e-3)
			if err != nil {
				t.Fatal(err)
			}
			back, err := c.Decompress(blob)
			if err != nil {
				t.Fatal(err)
			}
			poisoned = math.IsNaN(back.Data[0])
		}
		if !poisoned {
			t.Error("NaN poisoning never fired in a full period")
		}
	})
	t.Run("clean", func(t *testing.T) {
		c := WrapCompressor(inner, NewInjector(Plan{}))
		blob, err := c.Compress(buf, 1e-3)
		if err != nil {
			t.Fatal(err)
		}
		back, err := c.Decompress(blob)
		if err != nil {
			t.Fatal(err)
		}
		if d := buf.MaxAbsDiff(back); d > 1e-3*(1+1e-12) {
			t.Errorf("clean wrapper broke the bound: %g", d)
		}
		if c.Name() != "chaos(zfplike)" {
			t.Errorf("name %q", c.Name())
		}
	})
}

func TestFeaturePathWrappers(t *testing.T) {
	buf := sineBuffer(16, 16)
	cfg := predictors.Config{Workers: 1}

	t.Run("dataset-error", func(t *testing.T) {
		in := NewInjector(Plan{ErrorEvery: 1})
		df := in.Dataset(predictors.ComputeDataset)
		if _, err := df(buf, cfg); !errors.Is(err, ErrInjected) {
			t.Errorf("err = %v, want ErrInjected", err)
		}
	})
	t.Run("dataset-poison", func(t *testing.T) {
		in := NewInjector(Plan{NaNEvery: 1})
		df := in.Dataset(predictors.ComputeDataset)
		got, err := df(buf, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !math.IsNaN(got.SD) {
			t.Error("SD not poisoned")
		}
	})
	t.Run("eb-poison", func(t *testing.T) {
		in := NewInjector(Plan{NaNEvery: 1})
		eb := in.EB(predictors.ComputeEB)
		d, err := eb(buf, 1e-3, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !math.IsNaN(d) {
			t.Error("distortion not poisoned")
		}
	})
}

func TestLatencyInjection(t *testing.T) {
	in := NewInjector(Plan{LatencyEvery: 1, Latency: 5 * time.Millisecond})
	t0 := time.Now()
	in.decision("t")
	if el := time.Since(t0); el < 5*time.Millisecond {
		t.Errorf("decision returned after %s, want >= 5ms", el)
	}
	if c := in.Counts(); c.Delays != 1 {
		t.Errorf("delays = %d", c.Delays)
	}
}
