// Package crest (Compression Ratio ESTimation) is a pure-Go
// implementation of "A Lightweight, Effective Compressibility Estimation
// Method for Error-bounded Lossy Compression" (IEEE CLUSTER 2023): it
// predicts the compression ratio an error-bounded lossy compressor will
// achieve on a scientific 2D buffer — without running the compressor —
// using five spatial-statistics predictors fed into a
// mixture-of-linear-regressions model wrapped in split conformal
// prediction, so every estimate carries a distribution-free interval.
//
// The package also ships everything needed to reproduce the paper
// end-to-end on a laptop: eight error-bounded lossy compressors (SZ2-,
// SZ3-, ZFP-, BitGrooming-, DigitRounding-, SPERR-, TThresh- and
// MGARD-family designs), deterministic synthetic datasets standing in for
// SDRBench, the three prior estimation methods it compares against, the
// k-fold evaluation protocol, field-similarity training-set selection, the
// analytic speedup models of its three application use cases, and
// executable use-case simulations.
//
// For serving many estimates inline with parallel workloads, the
// BatchEstimator fans buffer × bound requests over a bounded worker pool
// backed by a shared, race-safe FeatureCache, and exposes observability
// counters (cache hits/misses, worker occupancy, per-stage wall time)
// through its Stats snapshot.
//
// # Quick start
//
//	ds := crest.HurricaneDataset(crest.DataOptions{})
//	comp := crest.MustCompressor("szinterp")
//	field := ds.Field("TC")
//
//	// Collect training samples: features + true CR for some buffers.
//	samples, _ := crest.CollectSamples(field.Buffers[:12], comp, 1e-3, crest.PredictorConfig{})
//	est, _ := crest.TrainEstimator(samples, crest.EstimatorConfig{})
//
//	// Estimate an unseen buffer's ratio with a 95% conformal interval.
//	feats, _ := crest.ComputeFeatureVector(field.Buffers[15], 1e-3, crest.PredictorConfig{})
//	e, _ := est.Estimate(feats)
//	fmt.Printf("CR ≈ %.1f in [%.1f, %.1f]\n", e.CR, e.Lo, e.Hi)
package crest
