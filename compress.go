package crest

import "github.com/crestlab/crest/internal/compressors"

// Compressor is an error-bounded lossy compressor: reconstructed values
// are guaranteed within the absolute bound ε of the originals.
type Compressor = compressors.Compressor

// NewCompressor returns a compressor by registry name. Available names:
// szlorenzo, szinterp, zfplike, bitgroom, digitround, sperrlike,
// tthreshlike, mgardlike.
func NewCompressor(name string) (Compressor, error) { return compressors.New(name) }

// MustCompressor is NewCompressor that panics on unknown names.
func MustCompressor(name string) Compressor { return compressors.MustNew(name) }

// CompressorNames lists all registered compressor names.
func CompressorNames() []string { return compressors.Names() }

// CompressionRatio compresses buf at bound eps and returns
// uncompressed/compressed — the ground truth the estimators predict.
func CompressionRatio(c Compressor, buf *Buffer, eps float64) (float64, error) {
	return compressors.Ratio(c, buf, eps)
}

// VerifyErrorBound round-trips buf through c and reports the maximum
// absolute error and whether it satisfies eps.
func VerifyErrorBound(c Compressor, buf *Buffer, eps float64) (maxErr float64, ok bool, err error) {
	return compressors.VerifyBound(c, buf, eps)
}

// CompressVolume compresses a native 3D volume slice-parallel (the §VI-A1
// slicing convention) into a packed container.
func CompressVolume(c Compressor, vol *Volume, eps float64, workers int) ([]byte, error) {
	return compressors.CompressVolume(c, vol, eps, workers)
}

// DecompressVolume reverses CompressVolume.
func DecompressVolume(c Compressor, data []byte, workers int) (*Volume, error) {
	return compressors.DecompressVolume(c, data, workers)
}

// VolumeCompressor is an error-bounded lossy compressor operating on
// native 3D volumes (as the real SZ3 does), rather than slicing to 2D.
type VolumeCompressor interface {
	Name() string
	CompressVolume(vol *Volume, eps float64) ([]byte, error)
	DecompressVolume(data []byte) (*Volume, error)
}

// NewSZInterp3D returns the native-3D SZ3-family compressor: the dyadic
// interpolation hierarchy runs across all three dimensions, exploiting
// the z-correlation that slice-wise compression discards (on z-correlated
// data it compresses substantially better than CompressVolume with the 2D
// szinterp).
func NewSZInterp3D() VolumeCompressor { return compressors.NewSZInterp3D() }

// RelativeBound converts a value-range-relative error bound (the "vrrel"
// mode of real compressors) to the absolute bound the compressors take:
// ε_abs = rel·(max−min).
func RelativeBound(buf *Buffer, rel float64) float64 {
	return compressors.RelativeBound(buf, rel)
}
