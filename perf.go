package crest

import (
	"github.com/crestlab/crest/internal/baselines"
	"github.com/crestlab/crest/internal/perfmodel"
	"github.com/crestlab/crest/internal/usecases"
)

// RuntimeDist is a Gaussian runtime model N(μ, σ) for a task family, the
// modeling primitive of the paper's §V speedup analysis.
type RuntimeDist = perfmodel.Dist

// ExpectedMax returns Elfving's asymptotic expected maximum of n Gaussian
// samples, the parallel-straggler term of the speedup models.
func ExpectedMax(d RuntimeDist, n int) float64 { return perfmodel.ElfvingMax(d, n) }

// ParallelTime returns W(μ, σ, n_t, n_p): the expected time to run n_t
// i.i.d. Gaussian tasks on n_p processors.
func ParallelTime(d RuntimeDist, tasks, procs int) float64 { return perfmodel.W(d, tasks, procs) }

// MinimalMakespan returns the minimal makespan of heterogeneous tasks on
// procs processors (exact up to 24 tasks, LPT beyond).
func MinimalMakespan(tasks []float64, procs int) float64 {
	return perfmodel.ExactMakespan(tasks, procs)
}

// UseCaseAModel parameterizes the CR-target-search speedup model.
type UseCaseAModel = perfmodel.UseCaseAInput

// UseCaseASpeedup evaluates the §V-C speedup formula.
func UseCaseASpeedup(in UseCaseAModel) float64 { return perfmodel.UseCaseASpeedup(in) }

// UseCaseBModel parameterizes the compressor-selection speedup model.
type UseCaseBModel = perfmodel.UseCaseBInput

// UseCaseBSpeedup evaluates the §V-D speedup formula.
func UseCaseBSpeedup(in UseCaseBModel) float64 { return perfmodel.UseCaseBSpeedup(in) }

// SelectionInversionProbability returns the probability of choosing a
// suboptimal compressor given CR means/variances and estimate error
// variances (§V-D worked example).
func SelectionInversionProbability(crMean, crVar, errVar []float64) float64 {
	return perfmodel.InversionProbability(crMean, crVar, errVar)
}

// UseCaseCModel parameterizes the parallel-write speedup model.
type UseCaseCModel = perfmodel.UseCaseCInput

// UseCaseCSpeedup evaluates the §V-E speedup formula.
func UseCaseCSpeedup(in UseCaseCModel) float64 { return perfmodel.UseCaseCSpeedup(in) }

// TrainingModel parameterizes the model-production-time comparison.
type TrainingModel = perfmodel.TrainingInput

// TrainingSpeedup evaluates the §V-F training-time formula.
func TrainingSpeedup(in TrainingModel) float64 { return perfmodel.TrainingSpeedup(in) }

// MeasureRuntime summarizes timing samples (seconds) as a Gaussian model.
func MeasureRuntime(samples []float64) RuntimeDist { return perfmodel.MeasureDist(samples) }

// CRCurve maps an error bound to a compression ratio, the oracle of the
// error-injection study.
type CRCurve = perfmodel.Curve

// InjectionResult is one noise level of the Fig. 3 study.
type InjectionResult = perfmodel.InjectionResult

// ErrorInjectionStudy reproduces Fig. 3: Gaussian estimate noise at the
// given levels is injected into a target search and the deviation from the
// noise-free solution is reported.
func ErrorInjectionStudy(truth CRCurve, target, loEps, hiEps float64, iters int, levels []float64, trials int, seed int64) []InjectionResult {
	return perfmodel.ErrorInjection(truth, target, loEps, hiEps, iters, levels, trials, seed)
}

// --- Executable use cases ---

// SearchResult reports one use-case-A run.
type SearchResult = usecases.SearchResult

// SearchComparison is one Fig. 7 measurement.
type SearchComparison = usecases.SearchComparison

// SearchTargetNoEstimate binary-searches an error bound for a CR target by
// running the compressor at every probe.
func SearchTargetNoEstimate(comp Compressor, buf *Buffer, target, loEps, hiEps float64, iters int) (SearchResult, error) {
	return usecases.SearchTargetNoEstimate(comp, buf, target, loEps, hiEps, iters)
}

// SearchTargetWithEstimate answers every probe with a trained estimation
// method and compresses only once at the end.
func SearchTargetWithEstimate(comp Compressor, buf *Buffer, m Method, target, loEps, hiEps float64, iters int) (SearchResult, error) {
	return usecases.SearchTargetWithEstimate(comp, buf, m, target, loEps, hiEps, iters)
}

// CompareSearch measures the use-case-A speedup of a method against the
// no-estimation baseline.
func CompareSearch(comp Compressor, buf *Buffer, m Method, target, loEps, hiEps float64, iters int) (SearchComparison, error) {
	return usecases.CompareSearch(comp, buf, m, target, loEps, hiEps, iters)
}

// SelectionResult reports one use-case-B run.
type SelectionResult = usecases.SelectionResult

// SelectBestNoEstimate runs every candidate compressor and re-runs the
// winner.
func SelectBestNoEstimate(comps []Compressor, buf *Buffer, eps float64) (SelectionResult, error) {
	return usecases.SelectBestNoEstimate(comps, buf, eps)
}

// SelectBestWithEstimate picks the candidate with the highest estimated
// ratio and runs only that one.
func SelectBestWithEstimate(comps []Compressor, buf *Buffer, eps float64, methods map[string]Method) (SelectionResult, error) {
	return usecases.SelectBestWithEstimate(comps, buf, eps, methods)
}

// AggFile is the aggregated-file container of use case C.
type AggFile = usecases.AggFile

// AggEntry is one directory record of an aggregated file.
type AggEntry = usecases.AggEntry

// UnmarshalAggFile parses a serialized aggregated file.
func UnmarshalAggFile(b []byte) (*AggFile, error) { return usecases.UnmarshalAggFile(b) }

// WriteResult reports one use-case-C run.
type WriteResult = usecases.WriteResult

// SizeEstimator predicts a reserved byte count before compression.
type SizeEstimator = usecases.SizeEstimator

// ConservativeEstimator derives a size estimator from a trained method
// with over-allocation factor alpha; the proposed method uses its
// conformal lower CR bound.
func ConservativeEstimator(m Method, alpha float64) SizeEstimator {
	return usecases.ConservativeEstimator(m, alpha)
}

// TargetMissEstimator derives a size estimator whose under-prediction
// probability is dialed a priori through the conformal level (retrains
// the method at λ = 2·missRate).
func TargetMissEstimator(p *baselines.Proposed, bufs []*Buffer, crs []float64, eps, missRate float64) (SizeEstimator, error) {
	return usecases.TargetMissEstimator(p, bufs, crs, eps, missRate)
}

// ParallelWriteNoEstimate builds an aggregated file by compressing twice
// (size pass + write pass).
func ParallelWriteNoEstimate(bufs []*Buffer, comp Compressor, eps float64, workers, memBuffers int) (WriteResult, error) {
	return usecases.ParallelWriteNoEstimate(bufs, comp, eps, workers, memBuffers)
}

// ParallelWriteWithEstimate builds an aggregated file by reserving offsets
// from size estimates and compressing once, repairing mispredictions into
// an overflow region.
func ParallelWriteWithEstimate(bufs []*Buffer, comp Compressor, eps float64, workers int, estimate SizeEstimator) (WriteResult, error) {
	return usecases.ParallelWriteWithEstimate(bufs, comp, eps, workers, estimate)
}
