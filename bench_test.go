package crest_test

// bench_test.go regenerates every table and figure of the paper at reduced
// size as testing.B benchmarks, reporting the headline numbers via
// b.ReportMetric. The full-fidelity versions live in cmd/experiments; the
// experiment ↔ bench mapping is the per-experiment index in DESIGN.md.

import (
	"fmt"
	"math"
	"testing"
	"time"

	crest "github.com/crestlab/crest"
)

const (
	benchNZ = 10
	benchNY = 48
	benchNX = 48
	benchEB = 1e-3
)

func benchHurricane(b *testing.B) *crest.Dataset {
	b.Helper()
	return crest.HurricaneDataset(crest.DataOptions{NZ: benchNZ, NY: benchNY, NX: benchNX, Seed: 1})
}

// BenchmarkFig1Ablation measures the Fig. 1 leave-one-predictor-out study
// on one field and reports the full-model and worst-ablated MedAPE.
func BenchmarkFig1Ablation(b *testing.B) {
	ds := benchHurricane(b)
	comp := crest.MustCompressor("szinterp")
	cache := crest.NewCRCache()
	var full, worst float64
	for i := 0; i < b.N; i++ {
		rows, err := crest.AblationStudy([]*crest.Field{ds.Field("TC")}, comp, benchEB,
			crest.EstimatorConfig{}, 3, 1, cache)
		if err != nil {
			b.Fatal(err)
		}
		full = rows[0].Full
		worst = 0
		for _, w := range rows[0].Without {
			if w > worst {
				worst = w
			}
		}
	}
	b.ReportMetric(full, "full-medape-%")
	b.ReportMetric(worst, "worst-ablated-medape-%")
}

// BenchmarkFig2PCA measures the latent-clustering pipeline: features +
// log-CR over four fields, PCA to 2D, silhouette-selected k-means.
func BenchmarkFig2PCA(b *testing.B) {
	ds := benchHurricane(b)
	comp := crest.MustCompressor("szinterp")
	var rows [][]float64
	for _, name := range []string{"CLOUD", "TC", "QVAPOR", "V"} {
		for _, buf := range ds.Field(name).Buffers {
			feats, err := crest.ComputeFeatureVector(buf, benchEB, crest.PredictorConfig{})
			if err != nil {
				b.Fatal(err)
			}
			cr, err := crest.CompressionRatio(comp, buf, benchEB)
			if err != nil {
				b.Fatal(err)
			}
			rows = append(rows, append([]float64{math.Log(math.Min(cr, 100))}, feats...))
		}
	}
	b.ResetTimer()
	var k int
	for i := 0; i < b.N; i++ {
		scores := crest.PCAProject(rows, 2)
		k = crest.SelectClusterCount(rows, 5, 1)
		_ = crest.KMeansCluster(rows, k, 1)
		_ = scores
	}
	b.ReportMetric(float64(k), "clusters")
}

// BenchmarkFig3ErrorInjection measures the use-case-A error-injection
// study on an analytic CR curve and reports the degradation at 8% noise.
func BenchmarkFig3ErrorInjection(b *testing.B) {
	curve := func(eps float64) float64 { return 4 * math.Pow(eps/1e-6, 0.3) }
	var worst float64
	for i := 0; i < b.N; i++ {
		res := crest.ErrorInjectionStudy(curve, 20, 1e-8, 1e-1, 18,
			[]float64{0.005, 0.01, 0.02, 0.04, 0.08}, 20, 1)
		worst = res[len(res)-1].ErrPct
	}
	b.ReportMetric(worst, "err-at-8pct-noise-%")
}

// BenchmarkFig4Summary measures the accuracy-summary protocol on a
// dataset × compressor slice and reports the median MedAPE.
func BenchmarkFig4Summary(b *testing.B) {
	ds := benchHurricane(b)
	comp := crest.MustCompressor("szinterp")
	cache := crest.NewCRCache()
	var med float64
	for i := 0; i < b.N; i++ {
		m := crest.NewProposedMethod(crest.EstimatorConfig{})
		q, _, err := crest.KFoldEvaluate(m, ds.Field("TC").Buffers, comp, benchEB, 4, 1, cache)
		if err != nil {
			b.Fatal(err)
		}
		med = q.Q50
	}
	b.ReportMetric(med, "medape-%")
}

// BenchmarkFig5MultiField measures similarity-ordered multi-field
// training for one target field.
func BenchmarkFig5MultiField(b *testing.B) {
	ds := benchHurricane(b)
	comp := crest.MustCompressor("szinterp")
	cache := crest.NewCRCache()
	sim, err := crest.FieldSimilarity(ds.Fields, crest.PredictorConfig{})
	if err != nil {
		b.Fatal(err)
	}
	target := sim.FieldIndex("CLOUD")
	order := sim.Order(target)
	b.ResetTimer()
	var medape float64
	for i := 0; i < b.N; i++ {
		m := crest.NewProposedMethod(crest.EstimatorConfig{})
		var train []*crest.Buffer
		for _, oi := range order[:3] {
			train = append(train, ds.Field(sim.Fields[oi]).Buffers...)
		}
		medape, _, err = crest.OutOfSampleEvaluate(m, train, ds.Field("CLOUD").Buffers, comp, benchEB, cache)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(medape, "oos-medape-%")
}

// BenchmarkFig6Conformal measures conformal calibration + coverage for an
// in-sample split and reports the empirical coverage.
func BenchmarkFig6Conformal(b *testing.B) {
	ds := benchHurricane(b)
	comp := crest.MustCompressor("szinterp")
	field := ds.Field("CLOUD")
	samples, err := crest.CollectSamples(field.Buffers, comp, benchEB, crest.PredictorConfig{})
	if err != nil {
		b.Fatal(err)
	}
	// Interleave the split so train and test span the whole z-range.
	var train, test []crest.Sample
	for i, s := range samples {
		if i%3 == 2 {
			test = append(test, s)
		} else {
			train = append(train, s)
		}
	}
	b.ResetTimer()
	var cov float64
	for i := 0; i < b.N; i++ {
		est, err := crest.TrainEstimator(train, crest.EstimatorConfig{})
		if err != nil {
			b.Fatal(err)
		}
		cov = est.Coverage(test)
	}
	b.ReportMetric(100*cov, "coverage-%")
}

// BenchmarkFig7Speedup measures the use-case-A search speedup of the
// proposed method against no-estimation for one compressor.
func BenchmarkFig7Speedup(b *testing.B) {
	ds := benchHurricane(b)
	comp := crest.MustCompressor("sperrlike")
	field := ds.Field("CLOUD")
	train := field.Buffers[:benchNZ-1]
	testBuf := field.Buffers[benchNZ-1]
	epses := []float64{1e-2, 1e-3, 1e-4}
	crs := make([][]float64, len(train))
	for i, buf := range train {
		crs[i] = make([]float64, len(epses))
		for j, e := range epses {
			cr, err := crest.CompressionRatio(comp, buf, e)
			if err != nil {
				b.Fatal(err)
			}
			crs[i][j] = math.Min(cr, 100)
		}
	}
	m := crest.NewProposedMethod(crest.EstimatorConfig{})
	if err := m.FitMulti(train, crs, epses); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var speedup float64
	for i := 0; i < b.N; i++ {
		sc, err := crest.CompareSearch(comp, testBuf, m, 10, 1e-6, 1e-1, 15)
		if err != nil {
			b.Fatal(err)
		}
		speedup = sc.Speedup
	}
	b.ReportMetric(speedup, "speedup-x")
}

// BenchmarkTable2Comparison measures the in-sample method comparison on
// one field and reports each method's MedAPE.
func BenchmarkTable2Comparison(b *testing.B) {
	ds := crest.MirandaDataset(crest.DataOptions{NZ: benchNZ, NY: benchNY, NX: benchNX, Seed: 1})
	comp := crest.MustCompressor("szinterp")
	cache := crest.NewCRCache()
	vx := ds.Field("velocityx")
	methods := []crest.Method{
		crest.NewProposedMethod(crest.EstimatorConfig{}),
		crest.NewUnderwoodMethod(),
		crest.NewTaoMethod(),
	}
	meds := make([]float64, len(methods))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for mi, m := range methods {
			q, _, err := crest.KFoldEvaluate(m, vx.Buffers, comp, 1e-4, 3, 1, cache)
			if err != nil {
				b.Fatal(err)
			}
			meds[mi] = q.Q50
		}
	}
	for mi, m := range methods {
		b.ReportMetric(meds[mi], fmt.Sprintf("%s-medape-%%", m.Name()))
	}
}

// BenchmarkTable3Similarity measures the field-similarity matrix and
// reports the outlier/self-distance contrast.
func BenchmarkTable3Similarity(b *testing.B) {
	ds := benchHurricane(b)
	var contrast float64
	for i := 0; i < b.N; i++ {
		sim, err := crest.FieldSimilarity(ds.Fields[:8], crest.PredictorConfig{})
		if err != nil {
			b.Fatal(err)
		}
		var off float64
		n := 0
		for r := range sim.Fields {
			for c := r + 1; c < len(sim.Fields); c++ {
				off += sim.D[r][c]
				n++
			}
		}
		self := 0.0
		for r := range sim.Fields {
			self += sim.D[r][r]
		}
		contrast = (off / float64(n)) / (self/float64(len(sim.Fields)) + 1e-12)
	}
	b.ReportMetric(contrast, "offdiag-vs-selfdiag")
}

// BenchmarkUseCaseB measures the selection inversion model (the §V-D
// worked example) plus an empirical selection round.
func BenchmarkUseCaseB(b *testing.B) {
	var p float64
	for i := 0; i < b.N; i++ {
		p = crest.SelectionInversionProbability(
			[]float64{3, 2, 1}, []float64{.1, .1, .1}, []float64{.0625, .0625, .0625})
	}
	b.ReportMetric(100*p, "inversion-%")
}

// BenchmarkUseCaseC measures the parallel aggregated write with estimates
// and reports misses per hundred buffers.
func BenchmarkUseCaseC(b *testing.B) {
	ds := benchHurricane(b)
	comp := crest.MustCompressor("szinterp")
	var train, write []*crest.Buffer
	var crs []float64
	for _, f := range ds.Fields[:6] {
		for _, buf := range f.Buffers[:3] {
			cr, err := crest.CompressionRatio(comp, buf, benchEB)
			if err != nil {
				b.Fatal(err)
			}
			train = append(train, buf)
			crs = append(crs, math.Min(cr, 100))
		}
		write = append(write, f.Buffers[3:]...)
	}
	m := crest.NewProposedMethod(crest.EstimatorConfig{})
	if err := m.Fit(train, crs, benchEB); err != nil {
		b.Fatal(err)
	}
	est := crest.ConservativeEstimator(m, 1.0)
	b.ResetTimer()
	var missRate float64
	for i := 0; i < b.N; i++ {
		res, err := crest.ParallelWriteWithEstimate(write, comp, benchEB, 2, est)
		if err != nil {
			b.Fatal(err)
		}
		missRate = 100 * float64(res.Mispredicts) / float64(len(write))
	}
	b.ReportMetric(missRate, "miss-%")
}

// BenchmarkTrainingSpeedup measures the §VI-E training-cost comparison:
// fused metrics + cover set vs unfused metrics + all fields.
func BenchmarkTrainingSpeedup(b *testing.B) {
	ds := benchHurricane(b)
	buf := ds.Field("TC").Buffers[0]
	comp := crest.MustCompressor("szinterp")
	var speedup float64
	for i := 0; i < b.N; i++ {
		fused := timeOnce(func() {
			if _, err := crest.ComputeDatasetFeatures(buf, crest.PredictorConfig{}); err != nil {
				b.Fatal(err)
			}
		})
		naive := timeOnce(func() {
			if _, err := crest.ComputeDatasetFeaturesNaive(buf, crest.PredictorConfig{}); err != nil {
				b.Fatal(err)
			}
		})
		compT := timeOnce(func() {
			if _, err := crest.CompressionRatio(comp, buf, benchEB); err != nil {
				b.Fatal(err)
			}
		})
		speedup = crest.TrainingSpeedup(crest.TrainingModel{
			Pred0: crest.RuntimeDist{Mu: naive}, Pred1: crest.RuntimeDist{Mu: fused},
			Compressor: crest.RuntimeDist{Mu: compT},
			Buffers0:   9 * benchNZ, Buffers1: 5 * benchNZ, Procs: 4,
		})
	}
	b.ReportMetric(speedup, "training-speedup-x")
}

// BenchmarkPerfModelA evaluates the §V-C analytic model at the paper's
// worked-example parameters.
func BenchmarkPerfModelA(b *testing.B) {
	in := crest.UseCaseAModel{
		Compressor: crest.RuntimeDist{Mu: 1, Sigma: 1},
		DataPred:   crest.RuntimeDist{Mu: 1, Sigma: 1},
		EBPred:     crest.RuntimeDist{Mu: 1, Sigma: 0.33},
		Searches:   100000,
		Procs:      40,
	}
	var s float64
	for i := 0; i < b.N; i++ {
		s = crest.UseCaseASpeedup(in)
	}
	b.ReportMetric(s, "model-speedup-x")
}

func timeOnce(fn func()) float64 {
	const reps = 3
	start := time.Now()
	for i := 0; i < reps; i++ {
		fn()
	}
	return time.Since(start).Seconds() / reps
}
