package crest_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	crest "github.com/crestlab/crest"
)

// TestDatasetFeaturesFusedMatchesNaiveProperty: for arbitrary randomized
// buffers, the fused single-pass implementation of the four error-bound-
// agnostic predictors must agree with the unfused per-metric reference to
// floating-point tolerance — the property-test form of the §IV-C
// differential check, run through the public API.
func TestDatasetFeaturesFusedMatchesNaiveProperty(t *testing.T) {
	cfg := crest.PredictorConfig{Workers: 1}
	rel := func(a, b float64) float64 {
		d := math.Abs(a - b)
		m := math.Max(math.Abs(a), math.Abs(b))
		if m < 1e-12 {
			return d
		}
		return d / m
	}
	prop := func(seed int64, rawRows, rawCols uint8, smooth bool) bool {
		rows := 16 + int(rawRows%33) // 16..48
		cols := 16 + int(rawCols%33)
		rng := rand.New(rand.NewSource(seed))
		data := make([]float64, rows*cols)
		for i := range data {
			if smooth {
				r, c := i/cols, i%cols
				data[i] = math.Sin(float64(r)/7)*math.Cos(float64(c)/9) + 0.05*rng.NormFloat64()
			} else {
				data[i] = rng.NormFloat64()
			}
		}
		buf, err := crest.BufferFromSlice(rows, cols, data)
		if err != nil {
			t.Fatal(err)
		}
		fused, err := crest.ComputeDatasetFeatures(buf, cfg)
		if err != nil {
			t.Fatal(err)
		}
		naive, err := crest.ComputeDatasetFeaturesNaive(buf, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ok := true
		check := func(name string, a, b, tol float64) {
			if rel(a, b) > tol {
				t.Logf("seed=%d %dx%d smooth=%v: %s fused %g vs naive %g", seed, rows, cols, smooth, name, a, b)
				ok = false
			}
		}
		check("SD", fused.SD, naive.SD, 1e-6)
		check("SC", fused.SC, naive.SC, 1e-6)
		check("CodingGain", fused.CodingGain, naive.CodingGain, 1e-4)
		check("CovSVDTrunc", fused.CovSVDTrunc, naive.CovSVDTrunc, 1e-9)
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}
