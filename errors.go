package crest

import (
	"github.com/crestlab/crest/internal/crerr"
)

// The estimation pipeline classifies every failure under a small set of
// sentinel errors. Match with errors.Is to route on failure class instead
// of string matching:
//
//	_, err := crest.ComputeFeatures(buf, eps, cfg)
//	switch {
//	case errors.Is(err, crest.ErrNonFiniteData):
//		// sanitize or drop the buffer
//	case errors.Is(err, crest.ErrInvalidBuffer):
//		// caller bug: bad shape or bound
//	}
var (
	// ErrInvalidBuffer reports a buffer whose shape or backing storage is
	// inconsistent (non-positive dimensions, data length mismatch, nil
	// buffer) or an invalid request parameter such as a non-positive
	// error bound.
	ErrInvalidBuffer = crerr.ErrInvalidBuffer

	// ErrNonFiniteData reports buffer data whose NaN/Inf fraction exceeds
	// the validation policy in force.
	ErrNonFiniteData = crerr.ErrNonFiniteData

	// ErrCanceled reports work abandoned because a context was canceled or
	// its deadline expired. Errors matching it also match the underlying
	// context sentinel (context.Canceled or context.DeadlineExceeded).
	ErrCanceled = crerr.ErrCanceled

	// ErrModelDegenerate reports a model fit that could not produce a
	// usable estimator even after falling back to the single-component
	// linear fit.
	ErrModelDegenerate = crerr.ErrModelDegenerate

	// ErrCompressor reports a compressor failure (error or recovered
	// panic) during ground-truth collection.
	ErrCompressor = crerr.ErrCompressor

	// ErrSnapshotCorrupt reports a model snapshot whose envelope is
	// malformed, whose payload digest does not match, or whose decoded
	// state fails validation.
	ErrSnapshotCorrupt = crerr.ErrSnapshotCorrupt

	// ErrSnapshotVersion reports a model snapshot written with a format
	// version this build does not speak.
	ErrSnapshotVersion = crerr.ErrSnapshotVersion

	// ErrOverloaded reports work refused by the serving layer's admission
	// control (inflight and queue bounds full). Transient: back off —
	// honoring any Retry-After hint — and retry.
	ErrOverloaded = crerr.ErrOverloaded

	// ErrBodyTooLarge reports an HTTP request body rejected by the
	// serving layer's size cap (wire kind "body_too_large", status 413).
	ErrBodyTooLarge = crerr.ErrBodyTooLarge

	// ErrDraining reports work refused because the serving process is
	// shutting down and no longer admits new requests.
	ErrDraining = crerr.ErrDraining

	// ErrStreamCorrupt reports a chunked block stream whose framing is
	// malformed, truncated, or whose transport failed mid-stream. The
	// wrapped chain also matches the underlying cause when one exists.
	ErrStreamCorrupt = crerr.ErrStreamCorrupt
)

// RequestError labels one request's failure with its position in a batch;
// extract with errors.As from a BatchError member.
type RequestError = crerr.IndexedError

// BatchError aggregates every per-request failure of a multi-request
// operation (BatchEstimator.EstimateAll, CollectSamples, cache warming)
// while the successes are still returned. It preserves every failing
// index — errors.As(err, &batchErr) then batchErr.Indices() or
// batchErr.ByIndex(i) — and errors.Is descends into every member.
type BatchError = crerr.AggregateError

// PanicValue extracts the recovered panic value when err originated from
// a worker panic that the pipeline isolated into a typed error.
func PanicValue(err error) (any, bool) { return crerr.PanicValue(err) }
