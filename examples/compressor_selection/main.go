// Compressor selection (use case B): pick the candidate with the highest
// compression ratio for each buffer. The naive approach runs every
// compressor and re-runs the winner; the estimate-driven approach asks one
// trained model per compressor and runs only the winner.
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	crest "github.com/crestlab/crest"
)

func main() {
	ds := crest.MirandaDataset(crest.DataOptions{Seed: 3})
	field := ds.Field("pressure")
	const eps = 1e-4
	names := []string{"szlorenzo", "szinterp", "zfplike", "sperrlike", "mgardlike"}

	nTrain := len(field.Buffers) * 2 / 3
	train, test := field.Buffers[:nTrain], field.Buffers[nTrain:]

	// One model per candidate compressor, sharing a feature cache: the
	// five predictors are compressor-independent, so each buffer's
	// features are computed once, not once per candidate.
	shared := crest.NewFeatureCache(crest.EstimatorConfig{})
	comps := make([]crest.Compressor, len(names))
	methods := map[string]crest.Method{}
	for i, name := range names {
		comps[i] = crest.MustCompressor(name)
		crs := make([]float64, len(train))
		for j, b := range train {
			cr, err := crest.CompressionRatio(comps[i], b, eps)
			if err != nil {
				log.Fatal(err)
			}
			crs[j] = math.Min(cr, 100)
		}
		m := crest.NewProposedMethodShared(crest.EstimatorConfig{}, shared)
		if err := m.Fit(train, crs, eps); err != nil {
			log.Fatal(err)
		}
		methods[name] = m
	}

	var tNo, tEst time.Duration
	correct := 0
	for _, b := range test {
		noEst, err := crest.SelectBestNoEstimate(comps, b, eps)
		if err != nil {
			log.Fatal(err)
		}
		withEst, err := crest.SelectBestWithEstimate(comps, b, eps, methods)
		if err != nil {
			log.Fatal(err)
		}
		tNo += noEst.Elapsed
		tEst += withEst.Elapsed
		if withEst.Correct {
			correct++
		}
		fmt.Printf("slice %2d: estimate chose %-12s (true best %-12s, CR %.2f vs %.2f)\n",
			b.Step, withEst.Chosen, withEst.TrueBest, withEst.ChosenCR, withEst.BestCR)
	}
	fmt.Printf("\ncorrect selections: %d/%d\n", correct, len(test))
	fmt.Printf("time without estimates: %v, with: %v (speedup %.2fx)\n",
		tNo, tEst, float64(tNo)/float64(tEst))
}
