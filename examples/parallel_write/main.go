// Parallel aggregated write (use case C): many workers write compressed
// buffers into one file, and every worker needs its offset *before*
// compressing. Size estimates from the conformal lower CR bound reserve
// the offsets; the rare under-predictions are repaired into an overflow
// region. The whole aggregated file round-trips from disk at the end.
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"

	crest "github.com/crestlab/crest"
)

func main() {
	ds := crest.HurricaneDataset(crest.DataOptions{Seed: 11})
	// A compressor whose cost dominates the predictors — the in-situ
	// HPC regime use case C targets.
	comp := crest.MustCompressor("sperrlike")
	const eps = 1e-3
	const workers = 4

	// Train one estimator spanning all fields so size estimates hold for
	// heterogeneous buffers.
	var train, write []*crest.Buffer
	for _, f := range ds.Fields {
		k := len(f.Buffers) / 3
		train = append(train, f.Buffers[:k]...)
		write = append(write, f.Buffers[k:]...)
	}
	crs := make([]float64, len(train))
	for i, b := range train {
		cr, err := crest.CompressionRatio(comp, b, eps)
		if err != nil {
			log.Fatal(err)
		}
		crs[i] = math.Min(cr, 100)
	}
	method := crest.NewProposedMethod(crest.EstimatorConfig{})
	if err := method.Fit(train, crs, eps); err != nil {
		log.Fatal(err)
	}

	base, err := crest.ParallelWriteNoEstimate(write, comp, eps, workers, 2)
	if err != nil {
		log.Fatal(err)
	}
	est, err := crest.ParallelWriteWithEstimate(write, comp, eps, workers,
		crest.ConservativeEstimator(method, 1.0))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("buffers: %d, workers: %d\n\n", len(write), workers)
	fmt.Printf("no estimates:   %v  (%d compressions)\n", base.Elapsed, base.Compressions)
	fmt.Printf("with estimates: %v  (%d compressions, %d misses, %d overflow bytes, %d wasted bytes)\n",
		est.Elapsed, est.Compressions, est.Mispredicts, est.OverflowBytes, est.File.WastedBytes())
	fmt.Printf("speedup: %.2fx\n", float64(base.Elapsed)/float64(est.Elapsed))
	fmt.Println("(on CPU-only predictors the estimates cost more than this compressor,")
	fmt.Println(" so the win here is the mechanism — single-pass writes with known")
	fmt.Println(" offsets and bounded misses; see cmd/experiments -run usecaseC for")
	fmt.Println(" the model showing what GPU-accelerated predictors restore)")
	fmt.Println()

	// Persist and re-read the aggregated file.
	path := filepath.Join(os.TempDir(), "crest_aggregated.bin")
	if err := os.WriteFile(path, est.File.Marshal(), 0o644); err != nil {
		log.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	file, err := crest.UnmarshalAggFile(raw)
	if err != nil {
		log.Fatal(err)
	}
	worst := 0.0
	for i, b := range write {
		dec, err := file.Read(i, comp)
		if err != nil {
			log.Fatal(err)
		}
		if d := b.MaxAbsDiff(dec); d > worst {
			worst = d
		}
	}
	fmt.Printf("wrote %s (%d bytes, %d entries); worst reconstruction error %.2e (bound %g)\n",
		path, len(raw), len(file.Entries), worst, eps)
}
