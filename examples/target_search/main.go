// Target search (use case A): find an error bound that achieves a desired
// compression ratio. The naive approach re-runs the compressor at every
// probe of a binary search; the estimate-driven approach answers probes
// with the trained model and compresses exactly once at the end.
package main

import (
	"fmt"
	"log"
	"math"

	crest "github.com/crestlab/crest"
)

func main() {
	ds := crest.HurricaneDataset(crest.DataOptions{Seed: 7})
	field := ds.Field("CLOUD")
	comp := crest.MustCompressor("sperrlike") // a deliberately slow compressor
	target := 15.0

	// Train a rate-aware model: sample each training buffer at several
	// error bounds so the search can interrogate the model anywhere.
	trainEps := []float64{1e-2, 1e-3, 1e-4, 1e-5}
	train := field.Buffers[:len(field.Buffers)-1]
	testBuf := field.Buffers[len(field.Buffers)-1]
	crs := make([][]float64, len(train))
	for i, b := range train {
		crs[i] = make([]float64, len(trainEps))
		for j, te := range trainEps {
			cr, err := crest.CompressionRatio(comp, b, te)
			if err != nil {
				log.Fatal(err)
			}
			crs[i][j] = math.Min(cr, 100)
		}
	}
	method := crest.NewProposedMethod(crest.EstimatorConfig{})
	if err := method.FitMulti(train, crs, trainEps); err != nil {
		log.Fatal(err)
	}

	const iters = 30
	base, err := crest.SearchTargetNoEstimate(comp, testBuf, target, 1e-6, 1e-1, iters)
	if err != nil {
		log.Fatal(err)
	}
	est, err := crest.SearchTargetWithEstimate(comp, testBuf, method, target, 1e-6, 1e-1, iters)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("target ratio: %.1f\n\n", target)
	fmt.Printf("no estimates:   eps=%.3e achieved CR=%.2f  (%d compressions, %v)\n",
		base.Eps, base.AchievedCR, base.Compressions, base.Elapsed)
	fmt.Printf("with estimates: eps=%.3e achieved CR=%.2f  (%d compressions + %d estimations, %v)\n",
		est.Eps, est.AchievedCR, est.Compressions, est.Estimations, est.Elapsed)
	fmt.Printf("\nspeedup: %.2fx, achieved-ratio deviation %.2f%%\n",
		float64(base.Elapsed)/float64(est.Elapsed),
		100*math.Abs(est.AchievedCR-base.AchievedCR)/base.AchievedCR)
}
