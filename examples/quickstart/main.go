// Quickstart: train a compressibility estimator on one field of the
// hurricane-like dataset and predict the compression ratio of unseen
// buffers — with conformal 95% intervals — without running the compressor.
package main

import (
	"fmt"
	"log"
	"math"

	crest "github.com/crestlab/crest"
)

func main() {
	// A deterministic synthetic dataset standing in for SDRBench
	// Hurricane: 12 fields, 20 time-step slices of 96x96 each.
	ds := crest.HurricaneDataset(crest.DataOptions{Seed: 42})
	field := ds.Field("TC")
	comp := crest.MustCompressor("szinterp") // SZ3-family compressor
	const eps = 1e-3                         // absolute pointwise error bound

	// Collect training data: the five statistical predictors plus the
	// true ratio (one compressor run each) for the first 14 slices.
	train := field.Buffers[:14]
	samples, err := crest.CollectSamples(train, comp, eps, crest.PredictorConfig{})
	if err != nil {
		log.Fatal(err)
	}

	// Fit the mixture-regression + conformal pipeline.
	est, err := crest.TrainEstimator(samples, crest.EstimatorConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained on %d buffers (conformal radius %.4f in log-CR)\n\n",
		len(samples), est.IntervalRadius())

	// Predict the remaining slices and compare against ground truth.
	fmt.Printf("%-6s %9s %9s %19s %7s\n", "slice", "true CR", "est CR", "95% interval", "APE")
	for _, buf := range field.Buffers[14:] {
		feats, err := crest.ComputeFeatureVector(buf, eps, crest.PredictorConfig{})
		if err != nil {
			log.Fatal(err)
		}
		e, err := est.Estimate(feats)
		if err != nil {
			log.Fatal(err)
		}
		truth, err := crest.CompressionRatio(comp, buf, eps)
		if err != nil {
			log.Fatal(err)
		}
		truth = math.Min(truth, 100)
		fmt.Printf("%-6d %9.2f %9.2f [%7.2f, %7.2f] %6.2f%%\n",
			buf.Step, truth, e.CR, e.Lo, e.Hi, 100*math.Abs(truth-e.CR)/truth)
	}
}
