// Cheap training (paper §VI-E): instead of collecting training data from
// every field of an application, measure field similarity from the
// singular-value decay of block covariances, then pick a minimal set of
// fields whose models cover the rest within an accuracy target.
package main

import (
	"fmt"
	"log"

	crest "github.com/crestlab/crest"
)

func main() {
	ds := crest.HurricaneDataset(crest.DataOptions{Seed: 5})
	comp := crest.MustCompressor("szinterp")
	const eps = 1e-3
	const accuracyTarget = 10.0 // % MedAPE

	// Step 1: the field-similarity matrix (Table III of the paper).
	sim, err := crest.FieldSimilarity(ds.Fields, crest.PredictorConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("field dissimilarity (Mahalanobis distance of singular decay profiles):")
	fmt.Printf("%-8s", "")
	for _, f := range sim.Fields {
		fmt.Printf(" %7.7s", f)
	}
	fmt.Println()
	for i := range sim.Fields {
		fmt.Printf("%-8.8s", sim.Fields[i])
		for j := range sim.Fields {
			fmt.Printf(" %7.1f", sim.D[i][j])
		}
		fmt.Println()
	}

	// Step 2: actual pairwise transfer accuracy defines the coverage
	// relation: field i covers field j when a model trained on i predicts
	// j within the target.
	n := len(ds.Fields)
	covers := make([][]bool, n)
	method := crest.NewProposedMethod(crest.EstimatorConfig{})
	cache := crest.NewCRCache()
	for i := range ds.Fields {
		covers[i] = make([]bool, n)
		covers[i][i] = true
		for j := range ds.Fields {
			if i == j {
				continue
			}
			medape, _, err := crest.OutOfSampleEvaluate(method,
				ds.Fields[i].Buffers, ds.Fields[j].Buffers, comp, eps, cache)
			if err != nil {
				log.Fatal(err)
			}
			covers[i][j] = medape <= accuracyTarget
		}
	}

	// Step 3: minimal covering training set (exact set cover; the paper
	// uses a SAT solver for the same job).
	cover, err := crest.MinimalTrainingSet(covers, nil)
	if err != nil {
		log.Fatalf("no cover achieves ≤%.0f%%: %v", accuracyTarget, err)
	}
	fmt.Printf("\nminimal training set at ≤%.0f%% MedAPE: ", accuracyTarget)
	for _, c := range cover {
		fmt.Printf("%s ", ds.Fields[c].Name)
	}
	fmt.Printf("(%d of %d fields -> %.1fx less training data)\n",
		len(cover), n, float64(n)/float64(len(cover)))
}
