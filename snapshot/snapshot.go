// Package snapshot persists trained compressibility estimators across
// process restarts: a trained core.Estimator (mixture components,
// conformal calibration, standardization moments, FellBack flag and the
// training configuration) is serialized into a self-describing envelope —
// a text header carrying the format name, format version and the SHA-256
// digest of the payload, followed by the JSON-encoded parameter state.
//
// Durability contract:
//
//   - Save is crash-safe: bytes land in a same-directory temp file, are
//     fsynced, and are renamed over the target only after the sync
//     succeeds, then the directory is fsynced. A reader never observes a
//     partial snapshot under the final name.
//   - Load verifies the payload digest before decoding and validates the
//     decoded state before constructing an estimator, so truncated,
//     bit-rotted or adversarial bytes yield a typed error
//     (crerr.ErrSnapshotCorrupt) — never a panic and never a silently
//     wrong model. A snapshot from a different format version is rejected
//     with crerr.ErrSnapshotVersion.
//   - LoadLatest scans a snapshot directory newest-first and serves the
//     newest snapshot that verifies, so a truncated or corrupt head
//     (crash mid-rollout, torn disk) degrades to the previous good model
//     instead of taking the service down.
//
// Restored estimators are bit-identical to their in-memory originals:
// Estimate on a loaded snapshot returns exactly the float64s the trained
// estimator would have returned.
package snapshot

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"time"

	"github.com/crestlab/crest/internal/core"
	"github.com/crestlab/crest/internal/crerr"
	"github.com/crestlab/crest/internal/obs"
	"github.com/crestlab/crest/internal/vfs"
)

// Magic is the format name on the envelope's first header line.
const Magic = "crest-snapshot"

// FormatVersion is the envelope version this build reads and writes.
const FormatVersion = 1

// Ext is the conventional snapshot file extension; LoadLatest considers
// only files carrying it.
const Ext = ".crsnap"

// maxHeader bounds how far Decode scans for the header, so a malformed
// blob cannot make header parsing quadratic.
const maxHeader = 256

// Encode serializes a trained estimator into the envelope format.
func Encode(est *core.Estimator) ([]byte, error) {
	st, err := est.State()
	if err != nil {
		return nil, err
	}
	payload, err := json.Marshal(st)
	if err != nil {
		return nil, err
	}
	sum := sha256.Sum256(payload)
	var b bytes.Buffer
	fmt.Fprintf(&b, "%s %d\nsha256 %s\n\n", Magic, FormatVersion, hex.EncodeToString(sum[:]))
	b.Write(payload)
	return b.Bytes(), nil
}

// Decode verifies and deserializes an envelope produced by Encode.
// Malformed envelopes, digest mismatches and invalid decoded states
// return errors matching crerr.ErrSnapshotCorrupt; an intact envelope of
// another format version matches crerr.ErrSnapshotVersion. Decode never
// panics, whatever the input bytes.
func Decode(data []byte) (*core.Estimator, error) {
	payload, err := splitEnvelope(data)
	if err != nil {
		return nil, err
	}
	var st core.EstimatorState
	if err := json.Unmarshal(payload, &st); err != nil {
		return nil, fmt.Errorf("%w: payload: %v", crerr.ErrSnapshotCorrupt, err)
	}
	est, err := core.FromState(&st)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", crerr.ErrSnapshotCorrupt, err)
	}
	return est, nil
}

// splitEnvelope parses and verifies the header, returning the payload.
func splitEnvelope(data []byte) ([]byte, error) {
	head := data
	if len(head) > maxHeader {
		head = head[:maxHeader]
	}
	// Line 1: "crest-snapshot <version>"
	nl1 := bytes.IndexByte(head, '\n')
	if nl1 < 0 {
		return nil, fmt.Errorf("%w: no header", crerr.ErrSnapshotCorrupt)
	}
	magic, verText, ok := bytes.Cut(data[:nl1], []byte(" "))
	if !ok || string(magic) != Magic {
		return nil, fmt.Errorf("%w: not a %s envelope", crerr.ErrSnapshotCorrupt, Magic)
	}
	ver, err := strconv.Atoi(string(verText))
	if err != nil {
		return nil, fmt.Errorf("%w: unreadable version %q", crerr.ErrSnapshotCorrupt, verText)
	}
	if ver != FormatVersion {
		return nil, fmt.Errorf("%w: snapshot is version %d, this build reads %d",
			crerr.ErrSnapshotVersion, ver, FormatVersion)
	}
	// Line 2: "sha256 <hex>"
	rest := data[nl1+1:]
	restHead := rest
	if len(restHead) > maxHeader {
		restHead = restHead[:maxHeader]
	}
	nl2 := bytes.IndexByte(restHead, '\n')
	if nl2 < 0 {
		return nil, fmt.Errorf("%w: truncated header", crerr.ErrSnapshotCorrupt)
	}
	algo, digestText, ok := bytes.Cut(rest[:nl2], []byte(" "))
	if !ok || string(algo) != "sha256" {
		return nil, fmt.Errorf("%w: missing sha256 digest line", crerr.ErrSnapshotCorrupt)
	}
	want, err := hex.DecodeString(string(digestText))
	if err != nil || len(want) != sha256.Size {
		return nil, fmt.Errorf("%w: unreadable digest %q", crerr.ErrSnapshotCorrupt, digestText)
	}
	// Blank separator line, then payload.
	rest = rest[nl2+1:]
	if len(rest) == 0 || rest[0] != '\n' {
		return nil, fmt.Errorf("%w: missing header separator", crerr.ErrSnapshotCorrupt)
	}
	payload := rest[1:]
	got := sha256.Sum256(payload)
	if !bytes.Equal(got[:], want) {
		return nil, fmt.Errorf("%w: payload digest mismatch (%d payload bytes)",
			crerr.ErrSnapshotCorrupt, len(payload))
	}
	return payload, nil
}

// Save writes est to path crash-safely (temp file + fsync + rename +
// directory fsync).
func Save(path string, est *core.Estimator) error {
	return SaveFS(vfs.OS, path, est)
}

// Snapshot I/O metrics on the process-wide registry: save/load latency
// histograms plus failure and corrupt-head-fallback counters, so a slow
// disk or a recurring corrupt snapshot shows up at GET /metrics instead
// of only in logs.
var (
	obsSave      = obs.Default().Histogram("snapshot_save_seconds", nil)
	obsLoad      = obs.Default().Histogram("snapshot_load_seconds", nil)
	obsLoadFails = obs.Default().Counter("snapshot_load_failures_total")
	obsFallbacks = obs.Default().Counter("snapshot_fallbacks_total")
)

// SaveFS is Save on an explicit filesystem, the seam the chaos harness
// injects short writes and rename failures through.
func SaveFS(fsys vfs.FS, path string, est *core.Estimator) error {
	t0 := time.Now()
	data, err := Encode(est)
	if err != nil {
		return err
	}
	if err := vfs.WriteFileAtomic(fsys, path, data); err != nil {
		return fmt.Errorf("snapshot: write %s: %w", path, err)
	}
	obsSave.Observe(time.Since(t0).Seconds())
	return nil
}

// Load reads, verifies and decodes the snapshot at path.
func Load(path string) (*core.Estimator, error) {
	return LoadFS(vfs.OS, path)
}

// LoadFS is Load on an explicit filesystem.
func LoadFS(fsys vfs.FS, path string) (*core.Estimator, error) {
	t0 := time.Now()
	data, err := fsys.ReadFile(path)
	if err != nil {
		obsLoadFails.Inc()
		return nil, fmt.Errorf("snapshot: read %s: %w", path, err)
	}
	est, err := Decode(data)
	if err != nil {
		obsLoadFails.Inc()
		return nil, fmt.Errorf("snapshot: %s: %w", path, err)
	}
	obsLoad.Observe(time.Since(t0).Seconds())
	return est, nil
}

// ErrNoSnapshots reports a directory holding no loadable *.crsnap file.
var ErrNoSnapshots = errors.New("snapshot: no snapshots in directory")

// LoadLatest loads the newest valid snapshot in dir: candidates carrying
// Ext are ordered newest-first (modification time, then name) and tried
// in turn, so a truncated or corrupt head falls back to the previous
// valid snapshot. It returns the loaded estimator and its path. When no
// candidate verifies, the error matches ErrNoSnapshots and carries every
// candidate's failure.
func LoadLatest(dir string) (*core.Estimator, string, error) {
	return LoadLatestFS(vfs.OS, dir)
}

// LoadLatestFS is LoadLatest on an explicit filesystem.
func LoadLatestFS(fsys vfs.FS, dir string) (*core.Estimator, string, error) {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, "", fmt.Errorf("snapshot: scan %s: %w", dir, err)
	}
	type candidate struct {
		name string
		mod  int64
	}
	var cands []candidate
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != Ext {
			continue
		}
		var mod int64
		if info, err := e.Info(); err == nil {
			mod = info.ModTime().UnixNano()
		}
		cands = append(cands, candidate{name: e.Name(), mod: mod})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].mod != cands[j].mod {
			return cands[i].mod > cands[j].mod
		}
		return cands[i].name > cands[j].name
	})
	if len(cands) == 0 {
		return nil, "", fmt.Errorf("%w: %s", ErrNoSnapshots, dir)
	}
	failures := make([]error, 0, len(cands))
	for _, c := range cands {
		path := filepath.Join(dir, c.name)
		est, err := LoadFS(fsys, path)
		if err == nil {
			return est, path, nil
		}
		// A failed candidate means the fallback chain advanced past a
		// corrupt (or vanished) snapshot — worth a counter, since a
		// recurring fallback signals a persistently bad head.
		obsFallbacks.Inc()
		failures = append(failures, err)
	}
	return nil, "", fmt.Errorf("%w: %s: every candidate failed: %w",
		ErrNoSnapshots, dir, errors.Join(failures...))
}

// WriteNew saves est into dir under a fresh sequence-numbered name
// (model-NNNNNN.crsnap, one past the highest existing sequence), so
// repeated training runs accumulate a history LoadLatest can fall back
// across. It returns the path written.
func WriteNew(dir string, est *core.Estimator) (string, error) {
	return WriteNewFS(vfs.OS, dir, est)
}

// WriteNewFS is WriteNew on an explicit filesystem.
func WriteNewFS(fsys vfs.FS, dir string, est *core.Estimator) (string, error) {
	entries, err := fsys.ReadDir(dir)
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return "", fmt.Errorf("snapshot: scan %s: %w", dir, err)
	}
	if errors.Is(err, fs.ErrNotExist) {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return "", fmt.Errorf("snapshot: create %s: %w", dir, err)
		}
	}
	seq := 0
	for _, e := range entries {
		name := e.Name()
		if filepath.Ext(name) != Ext {
			continue
		}
		base := name[:len(name)-len(Ext)]
		if n, ok := parseSeq(base); ok && n >= seq {
			seq = n + 1
		}
	}
	path := filepath.Join(dir, fmt.Sprintf("model-%06d%s", seq, Ext))
	if err := SaveFS(fsys, path, est); err != nil {
		return "", err
	}
	return path, nil
}

// parseSeq extracts N from a "model-N" base name.
func parseSeq(base string) (int, bool) {
	const prefix = "model-"
	if len(base) <= len(prefix) || base[:len(prefix)] != prefix {
		return 0, false
	}
	n, err := strconv.Atoi(base[len(prefix):])
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}
