package snapshot

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/crestlab/crest/internal/chaos"
	"github.com/crestlab/crest/internal/core"
	"github.com/crestlab/crest/internal/vfs"
)

// writeSeq writes n sequenced snapshots into dir with strictly increasing
// mtimes and returns their paths, oldest first.
func writeSeq(t *testing.T, dir string, est *core.Estimator, n int) []string {
	t.Helper()
	paths := make([]string, n)
	base := time.Now().Add(-time.Duration(n+1) * time.Minute)
	for i := 0; i < n; i++ {
		p, err := WriteNew(dir, est)
		if err != nil {
			t.Fatal(err)
		}
		// Pin mtimes so newest-first ordering does not depend on write
		// speed or filesystem timestamp resolution.
		mt := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(p, mt, mt); err != nil {
			t.Fatal(err)
		}
		paths[i] = p
	}
	return paths
}

func names(paths []string) map[string]bool {
	m := make(map[string]bool, len(paths))
	for _, p := range paths {
		m[filepath.Base(p)] = true
	}
	return m
}

func TestPruneKeepsNewestN(t *testing.T) {
	est := trainedEstimator(t, core.Config{})
	dir := t.TempDir()
	paths := writeSeq(t, dir, est, 5)

	removed, err := Prune(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 3 {
		t.Fatalf("removed %d snapshots, want 3: %v", len(removed), removed)
	}
	rm := names(removed)
	for _, p := range paths[:3] {
		if !rm[filepath.Base(p)] {
			t.Errorf("old snapshot %s survived prune", p)
		}
	}
	for _, p := range paths[3:] {
		if rm[filepath.Base(p)] {
			t.Errorf("recent snapshot %s was pruned", p)
		}
	}
	if _, _, err := LoadLatest(dir); err != nil {
		t.Fatalf("LoadLatest after prune: %v", err)
	}
}

func TestPruneKeepFloorIsOne(t *testing.T) {
	est := trainedEstimator(t, core.Config{})
	dir := t.TempDir()
	writeSeq(t, dir, est, 3)
	if _, err := Prune(dir, 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadLatest(dir); err != nil {
		t.Fatalf("keep=0 deleted every snapshot: %v", err)
	}
}

func TestPruneProtectsNamedPaths(t *testing.T) {
	est := trainedEstimator(t, core.Config{})
	dir := t.TempDir()
	paths := writeSeq(t, dir, est, 4)

	lkg := paths[0] // the oldest, which keep=1 would otherwise delete
	removed, err := Prune(dir, 1, lkg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range removed {
		if p == lkg {
			t.Fatalf("protected path %s was pruned", lkg)
		}
	}
	if _, err := os.Stat(lkg); err != nil {
		t.Fatalf("protected path gone: %v", err)
	}
}

// TestPruneCorruptHeadInteraction is the corrupt-head × prune regression:
// a torn write leaves a corrupt snapshot as the newest file; prune with
// keep=1 must delete the garbage and keep the newest *valid* snapshot —
// never the other way around — so LoadLatest still serves a model.
func TestPruneCorruptHeadInteraction(t *testing.T) {
	est := trainedEstimator(t, core.Config{})
	dir := t.TempDir()
	paths := writeSeq(t, dir, est, 2)
	goodHead := paths[1]

	// Torn write via the chaos filesystem: every write persists half its
	// bytes while reporting success, so the new head lands corrupt under
	// its final name.
	torn := chaos.WrapFS(vfs.OS, chaos.FSPlan{ShortWriteEvery: 1})
	badHead, err := WriteNewFS(torn, dir, est)
	if err != nil {
		t.Fatalf("torn write should report success, got %v", err)
	}
	future := time.Now().Add(time.Minute)
	if err := os.Chtimes(badHead, future, future); err != nil {
		t.Fatal(err)
	}
	if _, lerr := Load(badHead); !errors.Is(lerr, ErrNoSnapshots) && lerr == nil {
		t.Fatalf("head unexpectedly valid")
	}

	removed, err := Prune(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	rm := names(removed)
	if rm[filepath.Base(goodHead)] {
		t.Fatalf("prune deleted the newest valid snapshot %s", goodHead)
	}
	if !rm[filepath.Base(badHead)] {
		t.Errorf("prune kept the corrupt head %s", badHead)
	}
	if !rm[filepath.Base(paths[0])] {
		t.Errorf("prune kept stale snapshot %s beyond keep=1", paths[0])
	}
	_, from, err := LoadLatest(dir)
	if err != nil {
		t.Fatalf("LoadLatest after corrupt-head prune: %v", err)
	}
	if from != goodHead {
		t.Fatalf("LoadLatest served %s, want %s", from, goodHead)
	}
}

// TestPruneSparesVersionSkewAndUnreadable: version-skewed snapshots are
// another build's data and unreadable files are not provably corrupt —
// neither is garbage-collected.
func TestPruneSparesVersionSkewAndUnreadable(t *testing.T) {
	est := trainedEstimator(t, core.Config{})
	dir := t.TempDir()
	writeSeq(t, dir, est, 2)

	skew := filepath.Join(dir, "model-999990"+Ext)
	data, err := Encode(est)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(skew, []byte(strings.Replace(string(data), Magic+" 1", Magic+" 99", 1)), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-time.Hour)
	if err := os.Chtimes(skew, old, old); err != nil {
		t.Fatal(err)
	}

	failRead := chaos.WrapFS(vfs.OS, chaos.FSPlan{ReadErrorEvery: 1})
	if _, err := PruneFS(failRead, dir, 1); err != nil {
		t.Fatal(err)
	}
	// Every read failed, so nothing was provably prunable.
	entries, _ := os.ReadDir(dir)
	if len(entries) != 3 {
		t.Fatalf("prune under read faults removed files: %d left, want 3", len(entries))
	}

	if _, err := Prune(dir, 2); err != nil {
		t.Fatal(err)
	}
	if _, statErr := os.Stat(skew); statErr != nil {
		t.Fatalf("version-skewed snapshot was pruned: %v", statErr)
	}
}
