package snapshot

import (
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"sort"

	"github.com/crestlab/crest/internal/crerr"
	"github.com/crestlab/crest/internal/obs"
	"github.com/crestlab/crest/internal/vfs"
)

// Pruning metrics: how many snapshot files retention has removed, and how
// many prune passes ran — a registry that churns candidates shows up here.
var (
	obsPruned      = obs.Default().Counter("snapshot_pruned_total")
	obsPrunePasses = obs.Default().Counter("snapshot_prune_passes_total")
)

// Prune enforces keep-N retention on a snapshot directory: the newest keep
// valid snapshots are retained, older valid snapshots are deleted, and
// corrupt snapshots (torn writes, bit rot) are deleted as garbage.
//
// Safety invariants, in order of precedence:
//
//   - The newest *valid* snapshot is never deleted, whatever keep says
//     (keep < 1 is treated as 1). A corrupt head therefore never causes
//     the fallback target under it to be removed: validity is verified by
//     decoding, not assumed from position.
//   - A path listed in protect is never deleted, valid or not — the hook
//     for a registry's active and last-known-good versions, which must
//     survive retention even when newer candidates exist.
//   - Only files that decode as corrupt (crerr.ErrSnapshotCorrupt) are
//     treated as garbage. A snapshot from another format version
//     (crerr.ErrSnapshotVersion) or one that cannot be read at all is
//     kept: version skew is another build's data, and a read error is not
//     evidence of corruption.
//
// It returns the paths removed.
func Prune(dir string, keep int, protect ...string) ([]string, error) {
	return PruneFS(vfs.OS, dir, keep, protect...)
}

// PruneFS is Prune on an explicit filesystem, the seam the chaos harness
// injects torn writes and read failures through.
func PruneFS(fsys vfs.FS, dir string, keep int, protect ...string) ([]string, error) {
	if keep < 1 {
		keep = 1
	}
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("snapshot: prune scan %s: %w", dir, err)
	}
	protected := make(map[string]bool, len(protect))
	for _, p := range protect {
		protected[filepath.Clean(p)] = true
	}
	type candidate struct {
		name string
		mod  int64
	}
	var cands []candidate
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != Ext {
			continue
		}
		var mod int64
		if info, err := e.Info(); err == nil {
			mod = info.ModTime().UnixNano()
		}
		cands = append(cands, candidate{name: e.Name(), mod: mod})
	}
	// Newest first — the same ordering LoadLatest scans in, so "the newest
	// valid snapshot" means the same file to both.
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].mod != cands[j].mod {
			return cands[i].mod > cands[j].mod
		}
		return cands[i].name > cands[j].name
	})

	obsPrunePasses.Inc()
	var removed []string
	validKept := 0
	for _, c := range cands {
		path := filepath.Join(dir, c.name)
		if protected[filepath.Clean(path)] {
			continue
		}
		data, rerr := fsys.ReadFile(path)
		if rerr != nil {
			// Unreadable is not provably corrupt; keep it.
			continue
		}
		_, derr := Decode(data)
		switch {
		case derr == nil:
			if validKept < keep {
				validKept++
				continue
			}
		case errors.Is(derr, crerr.ErrSnapshotVersion):
			// Another build's snapshot: not ours to garbage-collect.
			continue
		case !errors.Is(derr, crerr.ErrSnapshotCorrupt):
			continue
		}
		// Either a valid snapshot beyond the keep budget or provably
		// corrupt garbage: delete it.
		if err := fsys.Remove(path); err != nil {
			return removed, fmt.Errorf("snapshot: prune %s: %w", path, err)
		}
		obsPruned.Inc()
		removed = append(removed, path)
	}
	return removed, nil
}
