package snapshot

import (
	"bytes"
	"errors"
	"testing"

	"github.com/crestlab/crest/internal/core"
	"github.com/crestlab/crest/internal/crerr"
)

// FuzzSnapshotDecode hardens the loader boundary: arbitrary bytes must
// never panic Decode, and every failure must be classified under the
// snapshot taxonomy. When the mutator happens to produce a decodable
// snapshot, the resulting estimator must be usable (Estimate returns
// finite numbers, never panics).
func FuzzSnapshotDecode(f *testing.F) {
	est := trainedEstimator(f, core.Config{})
	valid, err := Encode(est)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("crest-snapshot 1\nsha256 00\n\n{}"))
	f.Add(valid[:len(valid)/2])
	f.Add(bytes.Replace(valid, []byte("crest-snapshot 1"), []byte("crest-snapshot 99"), 1))
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)-3] ^= 0x10
	f.Add(flipped)

	feats := testVectors(4)
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Decode(data)
		if err != nil {
			if !errors.Is(err, crerr.ErrSnapshotCorrupt) && !errors.Is(err, crerr.ErrSnapshotVersion) {
				t.Fatalf("unclassified decode failure: %v", err)
			}
			return
		}
		// A decodable snapshot must yield a safe estimator.
		for _, fv := range feats {
			if _, err := got.Estimate(fv); err != nil {
				t.Fatalf("decoded estimator rejects valid features: %v", err)
			}
		}
	})
}
