package snapshot

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/crestlab/crest/internal/conformal"
	"github.com/crestlab/crest/internal/core"
	"github.com/crestlab/crest/internal/crerr"
)

// trainedEstimator fits a small mixture+conformal model on synthetic
// samples with a deterministic seed.
func trainedEstimator(t testing.TB, cfg core.Config) *core.Estimator {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	samples := make([]core.Sample, 80)
	for i := range samples {
		f := make([]float64, 5)
		for j := range f {
			f[j] = rng.NormFloat64()
		}
		cr := 1 + 10*math.Exp(0.5*f[0]-0.3*f[1]+0.2*f[2]+0.1*rng.NormFloat64())
		samples[i] = core.Sample{Features: f, CR: cr}
	}
	est, err := core.Train(samples, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return est
}

// testVectors returns deterministic feature vectors spanning the trained
// covariate region and some extrapolation.
func testVectors(n int) [][]float64 {
	rng := rand.New(rand.NewSource(11))
	out := make([][]float64, n)
	for i := range out {
		f := make([]float64, 5)
		for j := range f {
			f[j] = 2.5 * rng.NormFloat64()
		}
		out[i] = f
	}
	return out
}

// assertBitIdentical fails unless both estimators return exactly the same
// float64s for every vector.
func assertBitIdentical(t *testing.T, want, got *core.Estimator) {
	t.Helper()
	for i, f := range testVectors(64) {
		we, err1 := want.Estimate(f)
		ge, err2 := got.Estimate(f)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("vector %d: error mismatch: %v vs %v", i, err1, err2)
		}
		if we != ge {
			t.Fatalf("vector %d: estimate %+v != restored %+v", i, we, ge)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	est := trainedEstimator(t, core.Config{})
	data, err := Encode(est)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, est, back)
	if back.FellBack() != est.FellBack() {
		t.Errorf("FellBack %v != %v", back.FellBack(), est.FellBack())
	}
	if back.PredictorConfig() != est.PredictorConfig() {
		t.Errorf("predictor config %+v != %+v", back.PredictorConfig(), est.PredictorConfig())
	}
	if back.IntervalRadius() != est.IntervalRadius() {
		t.Errorf("radius %g != %g", back.IntervalRadius(), est.IntervalRadius())
	}
}

func TestMultiSplitRoundTrip(t *testing.T) {
	est := trainedEstimator(t, core.Config{ConformalSplits: 3})
	data, err := Encode(est)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, est, back)
}

func TestSaveLoadFile(t *testing.T) {
	est := trainedEstimator(t, core.Config{})
	path := filepath.Join(t.TempDir(), "model"+Ext)
	if err := Save(path, est); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, est, back)
}

func TestDecodeRejectsVersionSkew(t *testing.T) {
	est := trainedEstimator(t, core.Config{})
	data, _ := Encode(est)
	skewed := bytes.Replace(data,
		[]byte(fmt.Sprintf("%s %d\n", Magic, FormatVersion)),
		[]byte(fmt.Sprintf("%s %d\n", Magic, FormatVersion+1)), 1)
	_, err := Decode(skewed)
	if !errors.Is(err, crerr.ErrSnapshotVersion) {
		t.Fatalf("want ErrSnapshotVersion, got %v", err)
	}
	if errors.Is(err, crerr.ErrSnapshotCorrupt) {
		t.Fatalf("version skew misclassified as corruption: %v", err)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	est := trainedEstimator(t, core.Config{})
	data, _ := Encode(est)

	cases := map[string][]byte{
		"empty":          {},
		"garbage":        []byte("not a snapshot at all"),
		"truncated-head": data[:10],
		"truncated-tail": data[:len(data)-7],
	}
	flipped := append([]byte(nil), data...)
	flipped[len(flipped)-1] ^= 0x40
	cases["bit-flip"] = flipped

	for name, blob := range cases {
		if _, err := Decode(blob); !errors.Is(err, crerr.ErrSnapshotCorrupt) {
			t.Errorf("%s: want ErrSnapshotCorrupt, got %v", name, err)
		}
	}
}

// reEnvelope wraps payload bytes in a fresh valid header (correct digest),
// so tests can reach the state-validation layer behind the digest check.
func reEnvelope(payload []byte) []byte {
	sum := sha256.Sum256(payload)
	var b bytes.Buffer
	fmt.Fprintf(&b, "%s %d\nsha256 %s\n\n", Magic, FormatVersion, hex.EncodeToString(sum[:]))
	b.Write(payload)
	return b.Bytes()
}

func TestDecodeRejectsInvalidStateBehindValidDigest(t *testing.T) {
	est := trainedEstimator(t, core.Config{})
	data, _ := Encode(est)
	payload, err := splitEnvelope(data)
	if err != nil {
		t.Fatal(err)
	}
	var st core.EstimatorState
	if err := json.Unmarshal(payload, &st); err != nil {
		t.Fatal(err)
	}
	// Poison a gating variance: the digest will be valid, the state won't.
	st.Components[0].XVar[0][0] = -1
	bad, _ := json.Marshal(&st)
	if _, err := Decode(reEnvelope(bad)); !errors.Is(err, crerr.ErrSnapshotCorrupt) {
		t.Fatalf("invalid state accepted: %v", err)
	}
	// Non-JSON payload with a valid digest is also corruption.
	if _, err := Decode(reEnvelope([]byte("{broken"))); !errors.Is(err, crerr.ErrSnapshotCorrupt) {
		t.Fatalf("broken JSON accepted: %v", err)
	}
}

func TestWriteNewSequencesAndLoadLatest(t *testing.T) {
	dir := t.TempDir()
	est := trainedEstimator(t, core.Config{})

	p0, err := WriteNew(dir, est)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(p0) != "model-000000"+Ext {
		t.Fatalf("first snapshot named %s", p0)
	}
	p1, err := WriteNew(dir, est)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(p1) != "model-000001"+Ext {
		t.Fatalf("second snapshot named %s", p1)
	}
	// Make mtimes unambiguous on coarse-granularity filesystems.
	old := time.Now().Add(-time.Hour)
	if err := os.Chtimes(p0, old, old); err != nil {
		t.Fatal(err)
	}

	_, path, err := LoadLatest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if path != p1 {
		t.Fatalf("LoadLatest chose %s, want %s", path, p1)
	}
}

func TestLoadLatestFallsBackPastTruncatedHead(t *testing.T) {
	dir := t.TempDir()
	est := trainedEstimator(t, core.Config{})
	p0, err := WriteNew(dir, est)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := WriteNew(dir, est)
	if err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-time.Hour)
	if err := os.Chtimes(p0, old, old); err != nil {
		t.Fatal(err)
	}
	// Truncate the newest snapshot mid-payload: the crash-at-the-worst-
	// moment scenario LoadLatest must survive.
	if err := os.Truncate(p1, 64); err != nil {
		t.Fatal(err)
	}
	back, path, err := LoadLatest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if path != p0 {
		t.Fatalf("fallback chose %s, want %s", path, p0)
	}
	assertBitIdentical(t, est, back)
}

func TestLoadLatestEmptyAndAllCorrupt(t *testing.T) {
	dir := t.TempDir()
	if _, _, err := LoadLatest(dir); !errors.Is(err, ErrNoSnapshots) {
		t.Fatalf("empty dir: want ErrNoSnapshots, got %v", err)
	}
	if err := os.WriteFile(filepath.Join(dir, "model-000000"+Ext), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := LoadLatest(dir)
	if !errors.Is(err, ErrNoSnapshots) || !errors.Is(err, crerr.ErrSnapshotCorrupt) {
		t.Fatalf("all-corrupt dir: want ErrNoSnapshots+ErrSnapshotCorrupt, got %v", err)
	}
}

// TestOnlineTrackerRestartRoundTrip: a snapshot taken while online
// recalibration is live must carry the rolling window, so the restarted
// process resumes with the recalibrated radius and full coverage history
// instead of silently resetting to the offline calibration. The restored
// estimator must match the original's tracker stats exactly and stay in
// lockstep on future observations.
func TestOnlineTrackerRestartRoundTrip(t *testing.T) {
	est := trainedEstimator(t, core.Config{})
	est.EnableOnlineRecalibration(conformal.OnlineConfig{Window: 48, Band: 0.02, MinObserve: 24, Cooldown: 24})

	// Feed drifted ground truth (3x the estimate) until the radius moves
	// and the ring wraps (80 > Window) — the two regimes a restart must
	// not lose.
	rng := rand.New(rand.NewSource(13))
	recals := 0
	for i := 0; i < 80; i++ {
		f := make([]float64, 5)
		for j := range f {
			f[j] = rng.NormFloat64()
		}
		e, err := est.Estimate(f)
		if err != nil {
			t.Fatal(err)
		}
		_, recal, err := est.ObserveActual(f, 3*e.CR)
		if err != nil {
			t.Fatal(err)
		}
		if recal {
			recals++
		}
	}
	if recals == 0 {
		t.Fatal("fixture did not recalibrate; restart test would not exercise the moved radius")
	}

	data, err := Encode(est)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !back.OnlineRecalibrationEnabled() {
		t.Fatal("restored estimator lost the online tracker")
	}
	wantStats, _ := est.OnlineStats()
	gotStats, _ := back.OnlineStats()
	if gotStats != wantStats {
		t.Fatalf("restored tracker stats %+v != original %+v", gotStats, wantStats)
	}
	if back.IntervalRadius() != est.IntervalRadius() {
		t.Fatalf("restored radius %g != recalibrated %g", back.IntervalRadius(), est.IntervalRadius())
	}
	assertBitIdentical(t, est, back)

	// Identical future traffic must produce identical tracker evolution,
	// including any further recalibration decisions.
	futureRng := rand.New(rand.NewSource(17))
	for i := 0; i < 100; i++ {
		f := make([]float64, 5)
		for j := range f {
			f[j] = futureRng.NormFloat64()
		}
		e, err := est.Estimate(f)
		if err != nil {
			t.Fatal(err)
		}
		cr := 2 * e.CR
		so, ro, err1 := est.ObserveActual(f, cr)
		sb, rb, err2 := back.ObserveActual(f, cr)
		if err1 != nil || err2 != nil {
			t.Fatalf("observation %d: errors %v / %v", i, err1, err2)
		}
		if so != sb || ro != rb {
			t.Fatalf("observation %d diverged: original (%+v, %v) vs restored (%+v, %v)", i, so, ro, sb, rb)
		}
	}
}

// TestSnapshotWithoutOnlineFieldRestoresPlain: snapshots written before
// the online field existed (or with recalibration off) must keep
// restoring with no tracker installed.
func TestSnapshotWithoutOnlineFieldRestoresPlain(t *testing.T) {
	est := trainedEstimator(t, core.Config{})
	data, err := Encode(est)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.OnlineRecalibrationEnabled() {
		t.Fatal("plain snapshot restored with an online tracker")
	}
}

// TestDecodeRejectsCorruptOnlineState: a valid envelope whose online
// block violates tracker invariants is ErrSnapshotCorrupt, not a panic
// or a silently reset tracker.
func TestDecodeRejectsCorruptOnlineState(t *testing.T) {
	est := trainedEstimator(t, core.Config{})
	est.EnableOnlineRecalibration(conformal.OnlineConfig{Window: 16, Band: 0.05, MinObserve: 8, Cooldown: 8})
	rng := rand.New(rand.NewSource(19))
	for i := 0; i < 20; i++ {
		f := make([]float64, 5)
		for j := range f {
			f[j] = rng.NormFloat64()
		}
		e, err := est.Estimate(f)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := est.ObserveActual(f, e.CR); err != nil {
			t.Fatal(err)
		}
	}
	st, err := est.State()
	if err != nil {
		t.Fatal(err)
	}
	st.Online.Residuals[0] = -1
	mutated, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(reEnvelope(mutated)); !errors.Is(err, crerr.ErrSnapshotCorrupt) {
		t.Fatalf("corrupt online state decoded with err %v, want ErrSnapshotCorrupt", err)
	}
}
